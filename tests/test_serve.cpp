//===-- tests/test_serve.cpp - evaluation daemon unit tests ---------------===//
//
// Covers the serve subsystem from the bottom up: exact-integer JSON
// round-trips for protocol frames, cache keying, the two-tier result
// cache, and a real in-process daemon driven over unix-domain sockets
// (cold/warm byte-identity, admission control, graceful drain with an
// in-flight request).
//
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "serve/Eval.h"
#include "serve/Protocol.h"
#include "serve/ResultCache.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>

using namespace cerb;
using namespace cerb::serve;

namespace fs = std::filesystem;

namespace {

/// A unique fresh directory per test (removed on destruction). mkdtemp
/// hands out a kernel-guaranteed-unique path, so concurrent test binaries
/// (ctest -j) can never collide the way pid+counter schemes do after a
/// pid wrap or a stale leftover directory.
struct TempDir {
  fs::path Path;
  TempDir() {
    std::string Tmpl =
        (fs::temp_directory_path() / "cerb-serve-test-XXXXXX").string();
    char *P = ::mkdtemp(Tmpl.data());
    if (!P)
      std::abort();
    Path = P;
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str(const char *Leaf) const { return (Path / Leaf).string(); }
};

const char *TrivialSource = "int main(void) { return 0; }\n";

EvalRequest basicRequest() {
  EvalRequest Q;
  Q.Id = "req-1";
  Q.Name = "t";
  Q.Source = TrivialSource;
  Q.Policies = {mem::MemoryPolicy::defacto()};
  return Q;
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON round trips for protocol frames
//===----------------------------------------------------------------------===//

TEST(ServeJson, ExactIntegersSurviveRoundTrip) {
  auto Doc = json::parse("{\"a\": 18446744073709551615, \"b\": 9223372036854775808, "
                         "\"c\": -9223372036854775808, \"d\": 9007199254740993, "
                         "\"e\": 1.5, \"f\": -7}");
  ASSERT_TRUE(Doc.has_value());
  // u64 max and 2^63: both above double precision (2^53).
  EXPECT_EQ(Doc->get("a")->asU64(), 18446744073709551615ull);
  EXPECT_EQ(Doc->get("b")->asU64(), 9223372036854775808ull);
  // INT64_MIN has magnitude 2^63 — the one negative that still fits.
  EXPECT_EQ(Doc->get("c")->asI64(), INT64_MIN);
  // 2^53 + 1 rounds under double arithmetic; the sidecar must not.
  EXPECT_EQ(Doc->get("d")->asU64(), 9007199254740993ull);
  EXPECT_FALSE(Doc->get("e")->IsInt);
  EXPECT_DOUBLE_EQ(Doc->get("e")->asDouble(), 1.5);
  EXPECT_EQ(Doc->get("f")->asI64(), -7);
  EXPECT_EQ(Doc->get("f")->asU64(42), 42u) << "negative is out of u64 range";
}

TEST(ServeJson, EscapedStringsRoundTripThroughEvalFrames) {
  EvalRequest Q = basicRequest();
  Q.Id = "id \"quoted\"\\backslash";
  Q.Name = "name\twith\nnewline and \x01 control";
  Q.Source = "int main(void){\n  // \"str\" \\ \t\x02\x1f\n  return 0;\n}\n";
  Q.Seed = 18446744073709551615ull; // u64 max over the wire

  auto R = parseRequest(serializeEvalRequest(Q));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
  ASSERT_EQ(R->Kind, Op::Eval);
  EXPECT_EQ(R->Eval.Id, Q.Id);
  EXPECT_EQ(R->Eval.Name, Q.Name);
  EXPECT_EQ(R->Eval.Source, Q.Source);
  EXPECT_EQ(R->Eval.Seed, Q.Seed);
}

TEST(ServeJson, LimitsAndPoliciesRoundTrip) {
  EvalRequest Q = basicRequest();
  Q.Policies = {mem::MemoryPolicy::concrete(), mem::MemoryPolicy::cheri()};
  Q.ExecMode = oracle::Mode::Random;
  Q.Seed = 1ull << 63;
  Q.Limits.MaxPaths = 9007199254740993ull; // 2^53 + 1
  Q.Limits.MaxSteps = 123456789012345ull;
  Q.Limits.MaxCallDepth = 77;
  Q.Limits.DeadlineMs = 4000;
  Q.Limits.FallbackSamples = 3;
  Q.NoCache = true;

  auto R = parseRequest(serializeEvalRequest(Q));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
  ASSERT_EQ(R->Eval.Policies.size(), 2u);
  EXPECT_EQ(R->Eval.Policies[0].Name, "concrete");
  EXPECT_EQ(R->Eval.Policies[1].Name, "cheri");
  EXPECT_EQ(R->Eval.ExecMode, oracle::Mode::Random);
  EXPECT_EQ(R->Eval.Seed, 1ull << 63);
  EXPECT_EQ(R->Eval.Limits.MaxPaths, 9007199254740993ull);
  EXPECT_EQ(R->Eval.Limits.MaxSteps, 123456789012345ull);
  EXPECT_EQ(R->Eval.Limits.MaxCallDepth, 77u);
  EXPECT_EQ(R->Eval.Limits.DeadlineMs, 4000u);
  EXPECT_EQ(R->Eval.Limits.FallbackSamples, 3u);
  EXPECT_TRUE(R->Eval.NoCache);
  // And the round-tripped request keys identically to the original.
  EXPECT_EQ(cacheKeyMaterial(R->Eval), cacheKeyMaterial(Q));
}

TEST(ServeJson, NestedReportSurvivesTheEnvelope) {
  // A response embedding a nested report document parses as one JSON value
  // and the raw report bytes come back out verbatim.
  std::string Report =
      "{\n  \"schema\": \"cerb-oracle-report/1\",\n  \"stats\": "
      "{\"jobs\": 2, \"nested\": [1, 2, {\"deep\": \"y\\\"es\"}]},\n"
      "  \"jobs\": []\n}\n";
  std::string Frame = okEvalResponse("id-9", Report);
  auto Doc = json::parse(Frame);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->get("status")->asString(), "ok");
  const json::Value *Rep = Doc->get("report");
  ASSERT_NE(Rep, nullptr);
  EXPECT_EQ(Rep->get("schema")->asString(), "cerb-oracle-report/1");
  EXPECT_EQ(Rep->get("stats")->get("jobs")->asU64(), 2u);

  auto P = parseResponse(Frame);
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Id, "id-9");
  EXPECT_EQ(P->Status, "ok");
  EXPECT_EQ(P->Report, Report) << "report bytes must be extracted verbatim";
}

TEST(ServeJson, ParseRequestRejectsMalformedFrames) {
  EXPECT_FALSE(static_cast<bool>(parseRequest("{not json")));
  EXPECT_FALSE(static_cast<bool>(parseRequest("{\"schema\": \"wrong/9\"}")));
  auto NoSource = parseRequest("{\"schema\": \"cerb-serve/1\", \"op\": \"eval\"}");
  ASSERT_FALSE(static_cast<bool>(NoSource));
  EXPECT_NE(NoSource.error().Message.find("source"), std::string::npos);
  auto BadPolicy = parseRequest(
      "{\"schema\": \"cerb-serve/1\", \"op\": \"eval\", \"source\": \"int\","
      " \"policies\": [\"bogus\"]}");
  ASSERT_FALSE(static_cast<bool>(BadPolicy));
  EXPECT_NE(BadPolicy.error().Message.find("valid presets"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Policy naming and fingerprints (the byName/named satellite)
//===----------------------------------------------------------------------===//

TEST(ServePolicies, ByNameIsCaseInsensitive) {
  for (const char *N : {"defacto", "DeFacto", "DEFACTO", "de-facto"}) {
    auto P = mem::MemoryPolicy::byName(N);
    ASSERT_TRUE(P.has_value()) << N;
    EXPECT_EQ(P->Name, "defacto");
  }
  for (const char *N : {"strict-iso", "Strict-ISO", "strictIso", "ISO"}) {
    auto P = mem::MemoryPolicy::byName(N);
    ASSERT_TRUE(P.has_value()) << N;
    EXPECT_EQ(P->Name, "strict-iso");
  }
  EXPECT_TRUE(mem::MemoryPolicy::byName("CHERI").has_value());
  EXPECT_TRUE(mem::MemoryPolicy::byName("Concrete").has_value());
  EXPECT_FALSE(mem::MemoryPolicy::byName("defact").has_value());
}

TEST(ServePolicies, NamedErrorListsValidPresets) {
  auto P = mem::MemoryPolicy::named("no-such-policy");
  ASSERT_FALSE(static_cast<bool>(P));
  const std::string &M = P.error().Message;
  EXPECT_NE(M.find("no-such-policy"), std::string::npos);
  for (const char *K : {"concrete", "defacto", "strict-iso", "cheri"})
    EXPECT_NE(M.find(K), std::string::npos) << M;
}

TEST(ServePolicies, FingerprintsSeparatePresets) {
  auto All = mem::MemoryPolicy::allPresets();
  for (size_t I = 0; I < All.size(); ++I)
    for (size_t J = I + 1; J < All.size(); ++J)
      EXPECT_NE(All[I].fingerprint(), All[J].fingerprint())
          << All[I].Name << " vs " << All[J].Name;
  // The name is a label, not semantics: renaming must not change the print.
  mem::MemoryPolicy Renamed = mem::MemoryPolicy::defacto();
  Renamed.Name = "something-else";
  EXPECT_EQ(Renamed.fingerprint(), mem::MemoryPolicy::defacto().fingerprint());
}

TEST(ServePolicies, SemanticsFingerprintIsStableWithinProcess) {
  uint64_t A = exec::semanticsFingerprint();
  EXPECT_NE(A, 0u);
  EXPECT_EQ(A, exec::semanticsFingerprint());
}

//===----------------------------------------------------------------------===//
// Cache keying
//===----------------------------------------------------------------------===//

TEST(ServeCacheKey, SensitiveToEverySemanticsField) {
  EvalRequest Base = basicRequest();
  std::string K0 = cacheKeyMaterial(Base);

  auto Differs = [&](auto Mutate, const char *What) {
    EvalRequest Q = basicRequest();
    Mutate(Q);
    EXPECT_NE(cacheKeyMaterial(Q), K0) << What;
  };
  Differs([](EvalRequest &Q) { Q.Source += " "; }, "source");
  Differs([](EvalRequest &Q) { Q.Policies = {mem::MemoryPolicy::cheri()}; },
          "policy");
  Differs([](EvalRequest &Q) {
    Q.Policies.push_back(mem::MemoryPolicy::cheri());
  }, "policy set");
  Differs([](EvalRequest &Q) { Q.ExecMode = oracle::Mode::Random; }, "mode");
  Differs([](EvalRequest &Q) { Q.Seed = 2; }, "seed");
  Differs([](EvalRequest &Q) { Q.Limits.MaxPaths = 7; }, "max paths");
  Differs([](EvalRequest &Q) { Q.Limits.MaxSteps = 1000; }, "max steps");
  Differs([](EvalRequest &Q) { Q.Limits.MaxCallDepth = 5; }, "call depth");
  Differs([](EvalRequest &Q) { Q.Limits.DeadlineMs = 9; }, "deadline");
  Differs([](EvalRequest &Q) { Q.Limits.FallbackSamples = 2; }, "fallback");
  Differs([](EvalRequest &Q) { Q.Name = "other"; }, "name");

  // Id and NoCache are delivery details, not result identity.
  EvalRequest Q1 = basicRequest();
  Q1.Id = "different-id";
  Q1.NoCache = true;
  EXPECT_EQ(cacheKeyMaterial(Q1), K0);

  // A policy whose knobs changed keys differently even under the same name.
  EvalRequest Q2 = basicRequest();
  Q2.Policies[0].TrackProvenance = !Q2.Policies[0].TrackProvenance;
  EXPECT_NE(cacheKeyMaterial(Q2), K0);
}

TEST(ServeCacheKey, HashMatchesMaterialEquality) {
  EvalRequest A = basicRequest(), B = basicRequest();
  EXPECT_EQ(cacheKeyHash(cacheKeyMaterial(A)), cacheKeyHash(cacheKeyMaterial(B)));
  B.Seed = 99;
  EXPECT_NE(cacheKeyHash(cacheKeyMaterial(A)), cacheKeyHash(cacheKeyMaterial(B)));
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

TEST(ServeResultCache, MemoryTierHitsAndMisses) {
  CacheConfig Cfg; // memory-only
  ResultCache C(Cfg);
  EXPECT_FALSE(C.persistent());
  EXPECT_FALSE(C.get("key-a").has_value());
  C.put("key-a", "body-a");
  auto Hit = C.get("key-a");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, "body-a");
  CacheStats S = C.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.MemoryHits, 1u);
  EXPECT_EQ(S.Stores, 1u);
  EXPECT_EQ(S.MemoryEntries, 1u);
}

TEST(ServeResultCache, LruEvictionIsBounded) {
  CacheConfig Cfg;
  Cfg.MaxMemoryEntries = 2;
  ResultCache C(Cfg);
  C.put("k1", "b1");
  C.put("k2", "b2");
  ASSERT_TRUE(C.get("k1").has_value()); // k1 is now MRU
  C.put("k3", "b3");                    // evicts k2 (LRU)
  EXPECT_TRUE(C.get("k1").has_value());
  EXPECT_TRUE(C.get("k3").has_value());
  EXPECT_FALSE(C.get("k2").has_value());
  CacheStats S = C.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.MemoryEntries, 2u);
}

TEST(ServeResultCache, DiskTierSurvivesRestart) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  {
    ResultCache C(Cfg);
    C.put("persistent-key", "persistent-body");
    EXPECT_TRUE(C.flushIndex());
  }
  ResultCache C2(Cfg); // "restarted daemon"
  auto Hit = C2.get("persistent-key");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, "persistent-body");
  CacheStats S = C2.stats();
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.MemoryEntries, 1u) << "disk hits promote into memory";
  auto Again = C2.get("persistent-key");
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(C2.stats().MemoryHits, 1u);
}

TEST(ServeResultCache, CorruptOrMismatchedEntriesAreMisses) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  ResultCache C(Cfg);
  C.put("the-key", "the-body");

  // Find the object file and corrupt its header.
  fs::path Obj;
  for (const auto &E : fs::recursive_directory_iterator(Cfg.Dir + "/objects"))
    if (E.is_regular_file())
      Obj = E.path();
  ASSERT_FALSE(Obj.empty());
  {
    std::ofstream Out(Obj, std::ios::binary | std::ios::trunc);
    Out << "garbage";
  }
  ResultCache Fresh(Cfg); // bypass the memory tier
  EXPECT_FALSE(Fresh.get("the-key").has_value())
      << "a torn disk entry must read as a miss, not as data";
}

TEST(ServeResultCache, IndexFileIsWellFormed) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  ResultCache C(Cfg);
  C.put("a", "1");
  C.put("b", "2");
  ASSERT_TRUE(C.flushIndex());
  std::ifstream In(Cfg.Dir + "/index.json");
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  auto Doc = json::parse(Text);
  ASSERT_TRUE(Doc.has_value()) << Text;
  EXPECT_EQ(Doc->get("schema")->asString(), "cerb-serve-index/1");
  EXPECT_EQ(Doc->get("disk_entries")->asU64(), 2u);
  EXPECT_EQ(Doc->get("stores")->asU64(), 2u);
}

//===----------------------------------------------------------------------===//
// The daemon over real sockets
//===----------------------------------------------------------------------===//

namespace {

struct DaemonFixture {
  TempDir T;
  std::unique_ptr<Daemon> D;

  explicit DaemonFixture(uint64_t MaxQueue = 64, size_t MemEntries = 1024,
                         bool Persistent = true) {
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("d.sock");
    Cfg.Threads = 2;
    Cfg.MaxQueue = MaxQueue;
    if (Persistent)
      Cfg.Cache.Dir = T.str("cache");
    Cfg.Cache.MaxMemoryEntries = MemEntries;
    D = std::make_unique<Daemon>(std::move(Cfg));
  }

  explicit DaemonFixture(DaemonConfig Cfg) {
    if (Cfg.SocketPath.empty() && Cfg.TcpPort < 0)
      Cfg.SocketPath = T.str("d.sock");
    D = std::make_unique<Daemon>(std::move(Cfg));
  }

  /// start() with retry: the mkdtemp socket path cannot collide, but a
  /// TCP bind (even port 0 setup) can transiently fail on a loaded CI
  /// host — retry instead of flaking.
  ExpectedVoid start() {
    ExpectedVoid R = err("never started");
    for (int Attempt = 0; Attempt < 5; ++Attempt) {
      R = D->start();
      if (R)
        return R;
      std::this_thread::sleep_for(std::chrono::milliseconds(20 << Attempt));
    }
    return R;
  }

  Client client() {
    auto C = Client::connect(T.str("d.sock"));
    EXPECT_TRUE(static_cast<bool>(C));
    return std::move(*C);
  }
};

} // namespace

TEST(ServeDaemon, PingAndStats) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  auto Pong = C.callParsed(serializeSimpleRequest(Op::Ping, "p1"));
  ASSERT_TRUE(static_cast<bool>(Pong));
  EXPECT_EQ(Pong->Id, "p1");
  EXPECT_EQ(Pong->Status, "ok");

  auto StatsRaw = C.call(serializeSimpleRequest(Op::Stats, "s1"));
  ASSERT_TRUE(static_cast<bool>(StatsRaw));
  auto Doc = json::parse(*StatsRaw);
  ASSERT_TRUE(Doc.has_value()) << *StatsRaw;
  const json::Value *S = Doc->get("stats");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->get("in_flight")->asU64(), 0u);
  EXPECT_EQ(S->get("max_queue")->asU64(), 64u);
  EXPECT_TRUE(S->get("result_cache")->get("persistent")->asBool());

  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, WarmRepeatIsByteIdenticalToCold) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  EvalRequest Q = basicRequest();
  Q.Policies = mem::MemoryPolicy::allPresets();
  std::string Frame = serializeEvalRequest(Q);

  auto Cold = C.call(Frame);
  ASSERT_TRUE(static_cast<bool>(Cold));
  auto Warm = C.call(Frame);
  ASSERT_TRUE(static_cast<bool>(Warm));
  EXPECT_EQ(*Cold, *Warm) << "warm replay must be byte-identical";

  auto P = parseResponse(*Cold);
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Status, "ok");
  auto Rep = json::parse(P->Report);
  ASSERT_TRUE(Rep.has_value());
  EXPECT_EQ(Rep->get("schema")->asString(), "cerb-oracle-report/1");
  EXPECT_EQ(Rep->get("stats")->get("jobs")->asU64(),
            mem::MemoryPolicy::allPresets().size());

  CacheStats CS = F.D->cache().stats();
  EXPECT_EQ(CS.Misses, 1u);
  EXPECT_EQ(CS.MemoryHits, 1u);

  // A fresh daemon on the same cache directory serves it from disk —
  // still byte-identical.
  F.D->requestDrain();
  ASSERT_EQ(F.D->waitUntilDrained(), 0);
  DaemonConfig Cfg2;
  Cfg2.SocketPath = F.T.str("d2.sock");
  Cfg2.Threads = 2;
  Cfg2.Cache.Dir = F.T.str("cache");
  Daemon D2(std::move(Cfg2));
  ASSERT_TRUE(static_cast<bool>(D2.start()));
  auto C2 = Client::connect(F.T.str("d2.sock"));
  ASSERT_TRUE(static_cast<bool>(C2));
  auto Disk = C2->call(Frame);
  ASSERT_TRUE(static_cast<bool>(Disk));
  EXPECT_EQ(*Disk, *Cold);
  EXPECT_EQ(D2.cache().stats().DiskHits, 1u);
  D2.requestDrain();
  EXPECT_EQ(D2.waitUntilDrained(), 0);
}

TEST(ServeDaemon, DistinctRequestsDoNotShareEntries) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  EvalRequest A = basicRequest();
  EvalRequest B = basicRequest();
  B.Source = "int main(void) { return 1; }\n";
  auto RA = C.callParsed(serializeEvalRequest(A));
  auto RB = C.callParsed(serializeEvalRequest(B));
  ASSERT_TRUE(static_cast<bool>(RA));
  ASSERT_TRUE(static_cast<bool>(RB));
  EXPECT_NE(RA->Report, RB->Report);
  EXPECT_EQ(F.D->cache().stats().Misses, 2u);

  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, CompileErrorsTravelInsideReports) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  EvalRequest Q = basicRequest();
  Q.Source = "int main(void) { return not c at all; }";
  auto R = C.callParsed(serializeEvalRequest(Q));
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "ok") << "static errors are results, not failures";
  auto Rep = json::parse(R->Report);
  ASSERT_TRUE(Rep.has_value());
  EXPECT_EQ(Rep->get("stats")->get("compile_errors")->asU64(), 1u);
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, ZeroQueueRejectsEveryEvalDeterministically) {
  DaemonFixture F(/*MaxQueue=*/0);
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  auto R = C.callParsed(serializeEvalRequest(basicRequest()));
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "overloaded");
  // Control ops still answer under load shedding.
  auto Pong = C.callParsed(serializeSimpleRequest(Op::Ping, "p"));
  ASSERT_TRUE(static_cast<bool>(Pong));
  EXPECT_EQ(Pong->Status, "ok");
  EXPECT_EQ(F.D->snapshot().Overloaded, 1u);
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, MalformedFramesGetErrorResponses) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  auto R = C.callParsed("{\"schema\": \"cerb-serve/1\", \"op\": \"eval\"}");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "error");
  EXPECT_NE(R->Error.find("source"), std::string::npos);
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, DrainCompletesInFlightRequests) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  EvalRequest Q = basicRequest();
  Q.Name = "busy";
  Q.Source = "#include <stdio.h>\n"
             "int g;\n"
             "int main(void) {\n"
             "  int a = (g = 1) + (g = 2);\n"
             "  int b = (g = 3) + (g = 4);\n"
             "  printf(\"%d %d %d\\n\", a, b, g);\n"
             "  return 0;\n"
             "}\n";
  Q.Policies = mem::MemoryPolicy::allPresets();

  // Launch the call from another thread, drain as soon as the daemon has
  // admitted it: the drain must wait for the answer (zero drops).
  std::string Response;
  bool CallOk = false;
  std::thread Caller([&] {
    auto R = C.call(serializeEvalRequest(Q));
    if (R) {
      CallOk = true;
      Response = *R;
    }
  });
  while (F.D->snapshot().Admitted == 0 && F.D->snapshot().InFlight == 0)
    std::this_thread::yield();
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
  Caller.join();

  ASSERT_TRUE(CallOk) << "the in-flight request must be answered";
  auto P = parseResponse(Response);
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Status, "ok");

  // After the drain, new connections are not served.
  auto Late = Client::connect(F.T.str("d.sock"));
  EXPECT_FALSE(static_cast<bool>(Late));
}

TEST(ServeDaemon, ShutdownOpTriggersDrain) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  auto R = C.callParsed(serializeSimpleRequest(Op::Shutdown, "bye"));
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "ok");
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

//===----------------------------------------------------------------------===//
// Eval determinism without sockets
//===----------------------------------------------------------------------===//

TEST(ServeEval, ReportBytesAreAPureFunctionOfTheRequest) {
  EvalRequest Q = basicRequest();
  Q.Policies = mem::MemoryPolicy::allPresets();
  oracle::CompileCache CacheA, CacheB;
  std::string A = evaluateToReport(Q, CacheA);
  // A *shared, already-warm* compile cache must not change the bytes.
  std::string B1 = evaluateToReport(Q, CacheB);
  std::string B2 = evaluateToReport(Q, CacheB);
  EXPECT_EQ(A, B1);
  EXPECT_EQ(B1, B2);
  EXPECT_GT(CacheB.hits(), 0u);
}

//===----------------------------------------------------------------------===//
// Crash recovery for the disk cache
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <sys/socket.h>

namespace {

/// The single object file under <dir>/objects (the tests store one entry).
fs::path soleObjectFile(const std::string &Dir) {
  fs::path Obj;
  for (const auto &E : fs::recursive_directory_iterator(Dir + "/objects"))
    if (E.is_regular_file())
      Obj = E.path();
  return Obj;
}

size_t countFiles(const fs::path &Dir) {
  std::error_code EC;
  size_t N = 0;
  for (fs::recursive_directory_iterator It(Dir, EC), End; It != End && !EC;
       It.increment(EC))
    if (It->is_regular_file(EC))
      ++N;
  return N;
}

} // namespace

TEST(ServeCacheRecovery, TruncatedIndexIsRebuilt) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  {
    ResultCache C(Cfg);
    C.put("k", "v");
    ASSERT_TRUE(C.flushIndex());
  }
  { // Crash mid-flush: the index is half a JSON document.
    std::ofstream Out(Cfg.Dir + "/index.json", std::ios::trunc);
    Out << "{\"schema\": \"cerb-serve-in";
  }
  ResultCache C2(Cfg);
  EXPECT_EQ(C2.stats().IndexRebuilt, 1u);
  std::ifstream In(Cfg.Dir + "/index.json");
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(json::parse(Text).has_value()) << Text;
  // The entry itself was never at risk.
  auto Hit = C2.get("k");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, "v");
}

TEST(ServeCacheRecovery, EntryDeletedUnderTheIndexIsAMiss) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  {
    ResultCache C(Cfg);
    C.put("k", "v");
    ASSERT_TRUE(C.flushIndex());
  }
  fs::remove(soleObjectFile(Cfg.Dir));
  ResultCache C2(Cfg);
  EXPECT_FALSE(C2.get("k").has_value()) << "deleted entry degrades to a miss";
  C2.put("k", "v"); // self-heals on the next write
  ResultCache C3(Cfg);
  EXPECT_TRUE(C3.get("k").has_value());
}

TEST(ServeCacheRecovery, InterruptedPublishTempFileIsReclaimed) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  { ResultCache C(Cfg); } // create the layout
  { // Simulate kill -9 between temp write and rename.
    std::ofstream Out(Cfg.Dir + "/tmp/put-dead-0", std::ios::binary);
    Out << "half a record";
  }
  ResultCache C2(Cfg);
  EXPECT_EQ(C2.stats().TmpReclaimed, 1u);
  EXPECT_EQ(countFiles(fs::path(Cfg.Dir) / "tmp"), 0u);
}

TEST(ServeCacheRecovery, TornObjectIsQuarantinedNotServed) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  {
    ResultCache C(Cfg);
    C.put("k", std::string(4096, 'x'));
  }
  // Tear the published file in half: the v2 length header makes this
  // structurally detectable.
  fs::path Obj = soleObjectFile(Cfg.Dir);
  ASSERT_FALSE(Obj.empty());
  fs::resize_file(Obj, fs::file_size(Obj) / 2);

  ResultCache C2(Cfg);
  EXPECT_EQ(C2.stats().Quarantined, 1u);
  EXPECT_FALSE(C2.get("k").has_value()) << "torn entry must never be served";
  EXPECT_EQ(countFiles(fs::path(Cfg.Dir) / "objects"), 0u);
  EXPECT_EQ(countFiles(fs::path(Cfg.Dir) / "quarantine"), 1u)
      << "the torn file is kept for post-mortem, out of the lookup path";
}

TEST(ServeCacheRecovery, RecoverIsIdempotentOnAHealthyStore) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  ResultCache C(Cfg);
  C.put("a", "1");
  C.put("b", std::string(100, 'z'));
  RecoveryStats R = C.recover();
  EXPECT_EQ(R.ValidEntries, 2u);
  EXPECT_EQ(R.Quarantined, 0u);
  EXPECT_EQ(R.TmpReclaimed, 0u);
  EXPECT_TRUE(C.get("a").has_value());
  EXPECT_TRUE(C.get("b").has_value());
}

//===----------------------------------------------------------------------===//
// Fault injection through the cache's disk tier
//===----------------------------------------------------------------------===//

TEST(ServeCacheFaults, TornWriteFaultNeverReplaysWrongBytes) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  {
    ResultCache C(Cfg);
    fault::FaultSpec S;
    S.Site = "cache.torn";
    S.Nth = 1;
    fault::ScopedFaults F(1, {S});
    C.put("k", std::string(2048, 'y')); // publishes a torn file
  }
  ResultCache C2(Cfg); // recovery quarantines it
  EXPECT_EQ(C2.stats().Quarantined, 1u);
  EXPECT_FALSE(C2.get("k").has_value());
}

TEST(ServeCacheFaults, RenameFaultLeavesTmpForRecovery) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  {
    ResultCache C(Cfg);
    fault::FaultSpec S;
    S.Site = "cache.rename";
    S.Nth = 1;
    fault::ScopedFaults F(1, {S});
    C.put("k", "v"); // dies between temp write and rename
    EXPECT_EQ(countFiles(fs::path(Cfg.Dir) / "objects"), 0u);
    EXPECT_EQ(countFiles(fs::path(Cfg.Dir) / "tmp"), 1u);
  }
  ResultCache C2(Cfg);
  EXPECT_EQ(C2.stats().TmpReclaimed, 1u);
  EXPECT_FALSE(C2.get("k").has_value());
}

TEST(ServeCacheFaults, DiskFaultsDegradeToMissesNotErrors) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  Cfg.MaxMemoryEntries = 0; // force every get to the disk tier
  ResultCache C(Cfg);

  { // ENOSPC-style write failure: the store is skipped entirely.
    fault::FaultSpec S;
    S.Site = "cache.disk_write";
    S.Nth = 1;
    fault::ScopedFaults F(1, {S});
    C.put("k", "v");
    EXPECT_EQ(countFiles(fs::path(Cfg.Dir) / "objects"), 0u);
  }
  C.put("k", "v"); // healthy retry stores it
  ASSERT_TRUE(C.get("k").has_value());

  { // Read-side fault: a hit-able entry reads as a miss while armed.
    fault::FaultSpec S;
    S.Site = "cache.disk_read";
    S.Probability = 1.0;
    fault::ScopedFaults F(1, {S});
    EXPECT_FALSE(C.get("k").has_value());
  }
  EXPECT_TRUE(C.get("k").has_value()) << "disarmed: the entry is intact";
}

//===----------------------------------------------------------------------===//
// Deadline-aware frame reads (the daemon's no-hang guarantee)
//===----------------------------------------------------------------------===//

namespace {

struct SocketPair {
  int A = -1, B = -1;
  SocketPair() {
    int Fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds) != 0)
      std::abort();
    A = Fds[0];
    B = Fds[1];
  }
  ~SocketPair() {
    if (A >= 0)
      ::close(A);
    if (B >= 0)
      ::close(B);
  }
  void closeA() {
    ::close(A);
    A = -1;
  }
};

} // namespace

TEST(ServeTimedRead, IdleConnectionTimesOutQuickly) {
  SocketPair SP;
  std::string Out;
  auto T0 = std::chrono::steady_clock::now();
  EXPECT_EQ(net::readFrameTimed(SP.B, Out, net::DefaultMaxFrame, 50, 50),
            net::RecvStatus::Idle);
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
  EXPECT_LT(Ms, 5000) << "must not block anywhere near forever";
}

TEST(ServeTimedRead, PartialFrameTimesOutInsteadOfHanging) {
  SocketPair SP;
  // Two bytes of a length prefix, then silence.
  ASSERT_EQ(::write(SP.A, "\x00\x00", 2), 2);
  std::string Out;
  EXPECT_EQ(net::readFrameTimed(SP.B, Out, net::DefaultMaxFrame, 1000, 50),
            net::RecvStatus::Timeout);

  // A declared body that never arrives times out too.
  SocketPair SP2;
  ASSERT_EQ(::write(SP2.A, "\x00\x00\x00\x40" "partial", 11), 11);
  EXPECT_EQ(net::readFrameTimed(SP2.B, Out, net::DefaultMaxFrame, 1000, 50),
            net::RecvStatus::Timeout);
}

TEST(ServeTimedRead, OversizeFrameRejectedBeforeAllocation) {
  SocketPair SP;
  ASSERT_EQ(::write(SP.A, "\xff\xff\xff\xff", 4), 4); // claims ~4 GiB
  std::string Out;
  EXPECT_EQ(net::readFrameTimed(SP.B, Out, /*MaxLen=*/1 << 20, 1000, 1000),
            net::RecvStatus::Oversize);
}

TEST(ServeTimedRead, WholeFramesAndEofStillWork) {
  SocketPair SP;
  ASSERT_TRUE(net::writeFrame(SP.A, "hello"));
  std::string Out;
  EXPECT_EQ(net::readFrameTimed(SP.B, Out, net::DefaultMaxFrame, 1000, 1000),
            net::RecvStatus::Frame);
  EXPECT_EQ(Out, "hello");
  SP.closeA();
  EXPECT_EQ(net::readFrameTimed(SP.B, Out, net::DefaultMaxFrame, 1000, 1000),
            net::RecvStatus::Eof);
}

//===----------------------------------------------------------------------===//
// Daemon robustness: reaping, caps, garbage frames
//===----------------------------------------------------------------------===//

TEST(ServeDaemonRobust, IdleConnectionsAreReaped) {
  DaemonConfig Cfg;
  Cfg.Threads = 2;
  Cfg.IdleTimeoutMs = 50;
  DaemonFixture F(std::move(Cfg));
  ASSERT_TRUE(static_cast<bool>(F.start()));
  Client C = F.client();
  auto Pong = C.callParsed(serializeSimpleRequest(Op::Ping, "p"));
  ASSERT_TRUE(static_cast<bool>(Pong));
  // Go silent; the daemon reaps us.
  for (int I = 0; I < 200 && F.D->snapshot().IdleReaped == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(F.D->snapshot().IdleReaped, 1u);
  EXPECT_EQ(F.D->snapshot().LiveConns, 0u)
      << "the reaped reader released its descriptor";
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemonRobust, ConnectionCapRejectsWithExplicitStatus) {
  DaemonConfig Cfg;
  Cfg.Threads = 2;
  Cfg.MaxConns = 1;
  DaemonFixture F(std::move(Cfg));
  ASSERT_TRUE(static_cast<bool>(F.start()));
  Client C1 = F.client();
  auto Pong = C1.callParsed(serializeSimpleRequest(Op::Ping, "p"));
  ASSERT_TRUE(static_cast<bool>(Pong));

  // Second connection: accepted at the TCP level, rejected by the daemon
  // with a conn_limit frame before close.
  auto Raw = net::connectUnix(F.T.str("d.sock"));
  ASSERT_TRUE(static_cast<bool>(Raw));
  std::string Frame;
  ASSERT_EQ(net::readFrame(Raw->get(), Frame), 1);
  auto R = parseResponse(Frame);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "conn_limit");
  EXPECT_EQ(F.D->snapshot().RejectedConnLimit, 1u);

  // The first client keeps working; capacity frees when it leaves.
  ASSERT_TRUE(static_cast<bool>(
      C1.callParsed(serializeSimpleRequest(Op::Ping, "p2"))));
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemonRobust, GarbageAndOversizeFramesNeverHangAReader) {
  DaemonConfig Cfg;
  Cfg.Threads = 2;
  Cfg.ReadTimeoutMs = 100;
  DaemonFixture F(std::move(Cfg));
  ASSERT_TRUE(static_cast<bool>(F.start()));

  { // Oversize length prefix: explicit bad_request, then close.
    auto Raw = net::connectUnix(F.T.str("d.sock"));
    ASSERT_TRUE(static_cast<bool>(Raw));
    ASSERT_EQ(::write(Raw->get(), "\xff\xff\xff\xff", 4), 4);
    std::string Frame;
    ASSERT_EQ(net::readFrame(Raw->get(), Frame), 1);
    auto R = parseResponse(Frame);
    ASSERT_TRUE(static_cast<bool>(R));
    EXPECT_EQ(R->Status, "bad_request");
    EXPECT_EQ(net::readFrame(Raw->get(), Frame), 0) << "connection closed";
  }

  { // Partial frame then silence: timed out, never hangs the reader.
    auto Raw = net::connectUnix(F.T.str("d.sock"));
    ASSERT_TRUE(static_cast<bool>(Raw));
    ASSERT_EQ(::write(Raw->get(), "\x00\x00\x00\x10" "abc", 7), 7);
    std::string Frame;
    ASSERT_EQ(net::readFrame(Raw->get(), Frame), 1);
    auto R = parseResponse(Frame);
    ASSERT_TRUE(static_cast<bool>(R));
    EXPECT_EQ(R->Status, "timeout");
  }

  for (int I = 0; I < 200 && F.D->snapshot().LiveConns != 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  DaemonSnapshot S = F.D->snapshot();
  EXPECT_GE(S.BadFrames, 1u);
  EXPECT_GE(S.ReadTimeouts, 1u);
  EXPECT_EQ(S.LiveConns, 0u) << "no reader thread is stuck";

  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

//===----------------------------------------------------------------------===//
// Client retry under injected faults
//===----------------------------------------------------------------------===//

TEST(ServeRetry, SurvivesAnInjectedWriteFailure) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  RetryPolicy RP;
  RP.MaxAttempts = 4;
  RP.BaseDelayMs = 1;
  RP.Seed = 7;
  auto C = Client::connect(F.T.str("d.sock"), -1, RP);
  ASSERT_TRUE(static_cast<bool>(C));

  fault::FaultSpec S;
  S.Site = "socket.write";
  S.Nth = 1; // the client's first frame write in this process
  S.Err = EPIPE;
  fault::ScopedFaults Faults(7, {S});

  auto R = C->callRetryParsed(serializeSimpleRequest(Op::Ping, "p"));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
  EXPECT_EQ(R->Status, "ok");
  EXPECT_GE(fault::Injector::instance().totalShots(), 1u)
      << "the fault actually fired; the retry recovered";

  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeRetry, ReconnectsThroughAConnectFault) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  RetryPolicy RP;
  RP.MaxAttempts = 4;
  RP.BaseDelayMs = 1;
  RP.Seed = 7;
  auto C = Client::connect(F.T.str("d.sock"), -1, RP);
  ASSERT_TRUE(static_cast<bool>(C));

  // Kill the first call AND the first reconnect; attempt 3 gets through.
  fault::FaultSpec Write;
  Write.Site = "socket.write";
  Write.Nth = 1;
  Write.Err = ECONNRESET;
  fault::FaultSpec Conn;
  Conn.Site = "socket.connect";
  Conn.Nth = 1;
  fault::ScopedFaults Faults(7, {Write, Conn});

  auto R = C->callRetryParsed(serializeSimpleRequest(Op::Ping, "p"));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
  EXPECT_EQ(R->Status, "ok");
  EXPECT_EQ(fault::Injector::instance().shots("socket.connect"), 1u);

  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeRetry, GivesUpAfterMaxAttempts) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  RetryPolicy RP;
  RP.MaxAttempts = 3;
  RP.BaseDelayMs = 1;
  RP.Seed = 7;
  auto C = Client::connect(F.T.str("d.sock"), -1, RP);
  ASSERT_TRUE(static_cast<bool>(C));

  fault::FaultSpec S;
  S.Site = "socket.write";
  S.Probability = 1.0; // every write dies
  S.Err = EPIPE;
  fault::ScopedFaults Faults(7, {S});

  auto R = C->callRetry(serializeSimpleRequest(Op::Ping, "p"));
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().Message.find("3 attempts"), std::string::npos)
      << R.error().Message;

  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeRetry, HonoursTheTotalDeadline) {
  RetryPolicy RP;
  RP.MaxAttempts = 1000;
  RP.BaseDelayMs = 20;
  RP.MaxDelayMs = 50;
  RP.TotalDeadlineMs = 150;
  RP.Seed = 7;
  TempDir T;
  // Nothing is listening: every attempt fails at connect.
  auto C = Client::connect(T.str("nothing.sock"), -1, RP);
  ASSERT_FALSE(static_cast<bool>(C)); // connect itself fails

  // callRetry against a vanished daemon: bounded by the deadline, not by
  // the 1000 attempts.
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  auto C2 = Client::connect(F.T.str("d.sock"), -1, RP);
  ASSERT_TRUE(static_cast<bool>(C2));
  F.D->requestDrain();
  ASSERT_EQ(F.D->waitUntilDrained(), 0); // daemon gone, socket unlinked
  auto T0 = std::chrono::steady_clock::now();
  auto R = C2->callRetry(serializeSimpleRequest(Op::Ping, "p"));
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - T0)
                .count();
  EXPECT_FALSE(static_cast<bool>(R));
  EXPECT_LT(Ms, 5000) << "deadline must bound the whole retry loop";
}

TEST(ServeRetry, TerminalRejectionsAreNotRetried) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  RetryPolicy RP;
  RP.MaxAttempts = 5;
  RP.BaseDelayMs = 1;
  auto C = Client::connect(F.T.str("d.sock"), -1, RP);
  ASSERT_TRUE(static_cast<bool>(C));
  // A malformed eval is rejected deterministically — exactly one request
  // reaches the daemon, not five.
  auto R = C->callRetryParsed(
      "{\"schema\": \"cerb-serve/1\", \"op\": \"eval\"}");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "error");
  EXPECT_EQ(F.D->snapshot().Requests, 1u);
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

//===----------------------------------------------------------------------===//
// Protocol decode fuzz (satellite: seeded random + mutated valid frames)
//===----------------------------------------------------------------------===//

TEST(ServeFuzz, RandomByteStreamsNeverCrashTheDecoder) {
  std::mt19937_64 Rng(0xC0FFEE);
  for (int I = 0; I < 500; ++I) {
    size_t Len = Rng() % 300;
    std::string Payload(Len, '\0');
    for (char &C : Payload)
      C = static_cast<char>(Rng() & 0xFF);
    auto Req = parseRequest(Payload);   // must return, not crash/hang
    auto Resp = parseResponse(Payload); // ditto
    (void)Req;
    (void)Resp;
  }
}

TEST(ServeFuzz, MutatedValidFramesNeverCrashTheDecoder) {
  EvalRequest Q = basicRequest();
  Q.Policies = {mem::MemoryPolicy::defacto(), mem::MemoryPolicy::cheri()};
  const std::string Valid = serializeEvalRequest(Q);
  std::mt19937_64 Rng(0xDECAF);
  for (int I = 0; I < 500; ++I) {
    std::string M = Valid;
    switch (Rng() % 4) {
    case 0: // flip one byte
      M[Rng() % M.size()] = static_cast<char>(Rng() & 0xFF);
      break;
    case 1: // truncate
      M.resize(Rng() % M.size());
      break;
    case 2: // duplicate a chunk
      M += M.substr(Rng() % M.size());
      break;
    case 3: { // splice random garbage into the middle
      size_t At = Rng() % M.size();
      std::string Junk(Rng() % 16, '\0');
      for (char &C : Junk)
        C = static_cast<char>(Rng() & 0xFF);
      M.insert(At, Junk);
      break;
    }
    }
    auto Req = parseRequest(M);
    (void)Req;
  }
}

TEST(ServeFuzz, DeeplyNestedDocumentsAreErrorsNotStackOverflows) {
  // 100k levels would previously recurse the parser off the stack.
  std::string Deep(100000, '[');
  EXPECT_FALSE(json::parse(Deep).has_value());
  std::string DeepObj;
  for (int I = 0; I < 50000; ++I)
    DeepObj += "{\"a\":";
  EXPECT_FALSE(json::parse(DeepObj).has_value());
  // The bound is generous for real documents: 64 levels still parse.
  std::string Ok(64, '[');
  Ok += std::string(64, ']');
  EXPECT_TRUE(json::parse(Ok).has_value());
}

TEST(ServeFuzz, CheckedInCorpusReplays) {
  // Regression corpus of once-interesting decoder inputs. Every file must
  // decode without crashing; none may be accepted as a valid request
  // (they are all malformed by construction).
  fs::path Dir = fs::path(CERB_SOURCE_DIR) / "tests" / "corpus" / "serve";
  ASSERT_TRUE(fs::exists(Dir)) << Dir;
  size_t N = 0;
  for (const auto &E : fs::directory_iterator(Dir)) {
    if (!E.is_regular_file())
      continue;
    ++N;
    std::ifstream In(E.path(), std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    auto Req = parseRequest(Bytes);
    EXPECT_FALSE(static_cast<bool>(Req))
        << E.path() << " unexpectedly parsed as a valid request";
  }
  EXPECT_GE(N, 6u) << "corpus went missing";
}
