//===-- tests/test_serve.cpp - evaluation daemon unit tests ---------------===//
//
// Covers the serve subsystem from the bottom up: exact-integer JSON
// round-trips for protocol frames, cache keying, the two-tier result
// cache, and a real in-process daemon driven over unix-domain sockets
// (cold/warm byte-identity, admission control, graceful drain with an
// in-flight request).
//
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "serve/Eval.h"
#include "serve/Protocol.h"
#include "serve/ResultCache.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace cerb;
using namespace cerb::serve;

namespace fs = std::filesystem;

namespace {

/// A unique fresh directory per test (removed on destruction).
struct TempDir {
  fs::path Path;
  TempDir() {
    static std::atomic<unsigned> Id{0};
    Path = fs::temp_directory_path() /
           ("cerb-serve-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(Id.fetch_add(1)));
    fs::create_directories(Path);
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str(const char *Leaf) const { return (Path / Leaf).string(); }
};

const char *TrivialSource = "int main(void) { return 0; }\n";

EvalRequest basicRequest() {
  EvalRequest Q;
  Q.Id = "req-1";
  Q.Name = "t";
  Q.Source = TrivialSource;
  Q.Policies = {mem::MemoryPolicy::defacto()};
  return Q;
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON round trips for protocol frames
//===----------------------------------------------------------------------===//

TEST(ServeJson, ExactIntegersSurviveRoundTrip) {
  auto Doc = json::parse("{\"a\": 18446744073709551615, \"b\": 9223372036854775808, "
                         "\"c\": -9223372036854775808, \"d\": 9007199254740993, "
                         "\"e\": 1.5, \"f\": -7}");
  ASSERT_TRUE(Doc.has_value());
  // u64 max and 2^63: both above double precision (2^53).
  EXPECT_EQ(Doc->get("a")->asU64(), 18446744073709551615ull);
  EXPECT_EQ(Doc->get("b")->asU64(), 9223372036854775808ull);
  // INT64_MIN has magnitude 2^63 — the one negative that still fits.
  EXPECT_EQ(Doc->get("c")->asI64(), INT64_MIN);
  // 2^53 + 1 rounds under double arithmetic; the sidecar must not.
  EXPECT_EQ(Doc->get("d")->asU64(), 9007199254740993ull);
  EXPECT_FALSE(Doc->get("e")->IsInt);
  EXPECT_DOUBLE_EQ(Doc->get("e")->asDouble(), 1.5);
  EXPECT_EQ(Doc->get("f")->asI64(), -7);
  EXPECT_EQ(Doc->get("f")->asU64(42), 42u) << "negative is out of u64 range";
}

TEST(ServeJson, EscapedStringsRoundTripThroughEvalFrames) {
  EvalRequest Q = basicRequest();
  Q.Id = "id \"quoted\"\\backslash";
  Q.Name = "name\twith\nnewline and \x01 control";
  Q.Source = "int main(void){\n  // \"str\" \\ \t\x02\x1f\n  return 0;\n}\n";
  Q.Seed = 18446744073709551615ull; // u64 max over the wire

  auto R = parseRequest(serializeEvalRequest(Q));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
  ASSERT_EQ(R->Kind, Op::Eval);
  EXPECT_EQ(R->Eval.Id, Q.Id);
  EXPECT_EQ(R->Eval.Name, Q.Name);
  EXPECT_EQ(R->Eval.Source, Q.Source);
  EXPECT_EQ(R->Eval.Seed, Q.Seed);
}

TEST(ServeJson, LimitsAndPoliciesRoundTrip) {
  EvalRequest Q = basicRequest();
  Q.Policies = {mem::MemoryPolicy::concrete(), mem::MemoryPolicy::cheri()};
  Q.ExecMode = oracle::Mode::Random;
  Q.Seed = 1ull << 63;
  Q.Limits.MaxPaths = 9007199254740993ull; // 2^53 + 1
  Q.Limits.MaxSteps = 123456789012345ull;
  Q.Limits.MaxCallDepth = 77;
  Q.Limits.DeadlineMs = 4000;
  Q.Limits.FallbackSamples = 3;
  Q.NoCache = true;

  auto R = parseRequest(serializeEvalRequest(Q));
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
  ASSERT_EQ(R->Eval.Policies.size(), 2u);
  EXPECT_EQ(R->Eval.Policies[0].Name, "concrete");
  EXPECT_EQ(R->Eval.Policies[1].Name, "cheri");
  EXPECT_EQ(R->Eval.ExecMode, oracle::Mode::Random);
  EXPECT_EQ(R->Eval.Seed, 1ull << 63);
  EXPECT_EQ(R->Eval.Limits.MaxPaths, 9007199254740993ull);
  EXPECT_EQ(R->Eval.Limits.MaxSteps, 123456789012345ull);
  EXPECT_EQ(R->Eval.Limits.MaxCallDepth, 77u);
  EXPECT_EQ(R->Eval.Limits.DeadlineMs, 4000u);
  EXPECT_EQ(R->Eval.Limits.FallbackSamples, 3u);
  EXPECT_TRUE(R->Eval.NoCache);
  // And the round-tripped request keys identically to the original.
  EXPECT_EQ(cacheKeyMaterial(R->Eval), cacheKeyMaterial(Q));
}

TEST(ServeJson, NestedReportSurvivesTheEnvelope) {
  // A response embedding a nested report document parses as one JSON value
  // and the raw report bytes come back out verbatim.
  std::string Report =
      "{\n  \"schema\": \"cerb-oracle-report/1\",\n  \"stats\": "
      "{\"jobs\": 2, \"nested\": [1, 2, {\"deep\": \"y\\\"es\"}]},\n"
      "  \"jobs\": []\n}\n";
  std::string Frame = okEvalResponse("id-9", Report);
  auto Doc = json::parse(Frame);
  ASSERT_TRUE(Doc.has_value());
  EXPECT_EQ(Doc->get("status")->asString(), "ok");
  const json::Value *Rep = Doc->get("report");
  ASSERT_NE(Rep, nullptr);
  EXPECT_EQ(Rep->get("schema")->asString(), "cerb-oracle-report/1");
  EXPECT_EQ(Rep->get("stats")->get("jobs")->asU64(), 2u);

  auto P = parseResponse(Frame);
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Id, "id-9");
  EXPECT_EQ(P->Status, "ok");
  EXPECT_EQ(P->Report, Report) << "report bytes must be extracted verbatim";
}

TEST(ServeJson, ParseRequestRejectsMalformedFrames) {
  EXPECT_FALSE(static_cast<bool>(parseRequest("{not json")));
  EXPECT_FALSE(static_cast<bool>(parseRequest("{\"schema\": \"wrong/9\"}")));
  auto NoSource = parseRequest("{\"schema\": \"cerb-serve/1\", \"op\": \"eval\"}");
  ASSERT_FALSE(static_cast<bool>(NoSource));
  EXPECT_NE(NoSource.error().Message.find("source"), std::string::npos);
  auto BadPolicy = parseRequest(
      "{\"schema\": \"cerb-serve/1\", \"op\": \"eval\", \"source\": \"int\","
      " \"policies\": [\"bogus\"]}");
  ASSERT_FALSE(static_cast<bool>(BadPolicy));
  EXPECT_NE(BadPolicy.error().Message.find("valid presets"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Policy naming and fingerprints (the byName/named satellite)
//===----------------------------------------------------------------------===//

TEST(ServePolicies, ByNameIsCaseInsensitive) {
  for (const char *N : {"defacto", "DeFacto", "DEFACTO", "de-facto"}) {
    auto P = mem::MemoryPolicy::byName(N);
    ASSERT_TRUE(P.has_value()) << N;
    EXPECT_EQ(P->Name, "defacto");
  }
  for (const char *N : {"strict-iso", "Strict-ISO", "strictIso", "ISO"}) {
    auto P = mem::MemoryPolicy::byName(N);
    ASSERT_TRUE(P.has_value()) << N;
    EXPECT_EQ(P->Name, "strict-iso");
  }
  EXPECT_TRUE(mem::MemoryPolicy::byName("CHERI").has_value());
  EXPECT_TRUE(mem::MemoryPolicy::byName("Concrete").has_value());
  EXPECT_FALSE(mem::MemoryPolicy::byName("defact").has_value());
}

TEST(ServePolicies, NamedErrorListsValidPresets) {
  auto P = mem::MemoryPolicy::named("no-such-policy");
  ASSERT_FALSE(static_cast<bool>(P));
  const std::string &M = P.error().Message;
  EXPECT_NE(M.find("no-such-policy"), std::string::npos);
  for (const char *K : {"concrete", "defacto", "strict-iso", "cheri"})
    EXPECT_NE(M.find(K), std::string::npos) << M;
}

TEST(ServePolicies, FingerprintsSeparatePresets) {
  auto All = mem::MemoryPolicy::allPresets();
  for (size_t I = 0; I < All.size(); ++I)
    for (size_t J = I + 1; J < All.size(); ++J)
      EXPECT_NE(All[I].fingerprint(), All[J].fingerprint())
          << All[I].Name << " vs " << All[J].Name;
  // The name is a label, not semantics: renaming must not change the print.
  mem::MemoryPolicy Renamed = mem::MemoryPolicy::defacto();
  Renamed.Name = "something-else";
  EXPECT_EQ(Renamed.fingerprint(), mem::MemoryPolicy::defacto().fingerprint());
}

TEST(ServePolicies, SemanticsFingerprintIsStableWithinProcess) {
  uint64_t A = exec::semanticsFingerprint();
  EXPECT_NE(A, 0u);
  EXPECT_EQ(A, exec::semanticsFingerprint());
}

//===----------------------------------------------------------------------===//
// Cache keying
//===----------------------------------------------------------------------===//

TEST(ServeCacheKey, SensitiveToEverySemanticsField) {
  EvalRequest Base = basicRequest();
  std::string K0 = cacheKeyMaterial(Base);

  auto Differs = [&](auto Mutate, const char *What) {
    EvalRequest Q = basicRequest();
    Mutate(Q);
    EXPECT_NE(cacheKeyMaterial(Q), K0) << What;
  };
  Differs([](EvalRequest &Q) { Q.Source += " "; }, "source");
  Differs([](EvalRequest &Q) { Q.Policies = {mem::MemoryPolicy::cheri()}; },
          "policy");
  Differs([](EvalRequest &Q) {
    Q.Policies.push_back(mem::MemoryPolicy::cheri());
  }, "policy set");
  Differs([](EvalRequest &Q) { Q.ExecMode = oracle::Mode::Random; }, "mode");
  Differs([](EvalRequest &Q) { Q.Seed = 2; }, "seed");
  Differs([](EvalRequest &Q) { Q.Limits.MaxPaths = 7; }, "max paths");
  Differs([](EvalRequest &Q) { Q.Limits.MaxSteps = 1000; }, "max steps");
  Differs([](EvalRequest &Q) { Q.Limits.MaxCallDepth = 5; }, "call depth");
  Differs([](EvalRequest &Q) { Q.Limits.DeadlineMs = 9; }, "deadline");
  Differs([](EvalRequest &Q) { Q.Limits.FallbackSamples = 2; }, "fallback");
  Differs([](EvalRequest &Q) { Q.Name = "other"; }, "name");

  // Id and NoCache are delivery details, not result identity.
  EvalRequest Q1 = basicRequest();
  Q1.Id = "different-id";
  Q1.NoCache = true;
  EXPECT_EQ(cacheKeyMaterial(Q1), K0);

  // A policy whose knobs changed keys differently even under the same name.
  EvalRequest Q2 = basicRequest();
  Q2.Policies[0].TrackProvenance = !Q2.Policies[0].TrackProvenance;
  EXPECT_NE(cacheKeyMaterial(Q2), K0);
}

TEST(ServeCacheKey, HashMatchesMaterialEquality) {
  EvalRequest A = basicRequest(), B = basicRequest();
  EXPECT_EQ(cacheKeyHash(cacheKeyMaterial(A)), cacheKeyHash(cacheKeyMaterial(B)));
  B.Seed = 99;
  EXPECT_NE(cacheKeyHash(cacheKeyMaterial(A)), cacheKeyHash(cacheKeyMaterial(B)));
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

TEST(ServeResultCache, MemoryTierHitsAndMisses) {
  CacheConfig Cfg; // memory-only
  ResultCache C(Cfg);
  EXPECT_FALSE(C.persistent());
  EXPECT_FALSE(C.get("key-a").has_value());
  C.put("key-a", "body-a");
  auto Hit = C.get("key-a");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, "body-a");
  CacheStats S = C.stats();
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.MemoryHits, 1u);
  EXPECT_EQ(S.Stores, 1u);
  EXPECT_EQ(S.MemoryEntries, 1u);
}

TEST(ServeResultCache, LruEvictionIsBounded) {
  CacheConfig Cfg;
  Cfg.MaxMemoryEntries = 2;
  ResultCache C(Cfg);
  C.put("k1", "b1");
  C.put("k2", "b2");
  ASSERT_TRUE(C.get("k1").has_value()); // k1 is now MRU
  C.put("k3", "b3");                    // evicts k2 (LRU)
  EXPECT_TRUE(C.get("k1").has_value());
  EXPECT_TRUE(C.get("k3").has_value());
  EXPECT_FALSE(C.get("k2").has_value());
  CacheStats S = C.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.MemoryEntries, 2u);
}

TEST(ServeResultCache, DiskTierSurvivesRestart) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  {
    ResultCache C(Cfg);
    C.put("persistent-key", "persistent-body");
    EXPECT_TRUE(C.flushIndex());
  }
  ResultCache C2(Cfg); // "restarted daemon"
  auto Hit = C2.get("persistent-key");
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(*Hit, "persistent-body");
  CacheStats S = C2.stats();
  EXPECT_EQ(S.DiskHits, 1u);
  EXPECT_EQ(S.MemoryEntries, 1u) << "disk hits promote into memory";
  auto Again = C2.get("persistent-key");
  ASSERT_TRUE(Again.has_value());
  EXPECT_EQ(C2.stats().MemoryHits, 1u);
}

TEST(ServeResultCache, CorruptOrMismatchedEntriesAreMisses) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  ResultCache C(Cfg);
  C.put("the-key", "the-body");

  // Find the object file and corrupt its header.
  fs::path Obj;
  for (const auto &E : fs::recursive_directory_iterator(Cfg.Dir + "/objects"))
    if (E.is_regular_file())
      Obj = E.path();
  ASSERT_FALSE(Obj.empty());
  {
    std::ofstream Out(Obj, std::ios::binary | std::ios::trunc);
    Out << "garbage";
  }
  ResultCache Fresh(Cfg); // bypass the memory tier
  EXPECT_FALSE(Fresh.get("the-key").has_value())
      << "a torn disk entry must read as a miss, not as data";
}

TEST(ServeResultCache, IndexFileIsWellFormed) {
  TempDir T;
  CacheConfig Cfg;
  Cfg.Dir = T.str("cache");
  ResultCache C(Cfg);
  C.put("a", "1");
  C.put("b", "2");
  ASSERT_TRUE(C.flushIndex());
  std::ifstream In(Cfg.Dir + "/index.json");
  std::string Text((std::istreambuf_iterator<char>(In)),
                   std::istreambuf_iterator<char>());
  auto Doc = json::parse(Text);
  ASSERT_TRUE(Doc.has_value()) << Text;
  EXPECT_EQ(Doc->get("schema")->asString(), "cerb-serve-index/1");
  EXPECT_EQ(Doc->get("disk_entries")->asU64(), 2u);
  EXPECT_EQ(Doc->get("stores")->asU64(), 2u);
}

//===----------------------------------------------------------------------===//
// The daemon over real sockets
//===----------------------------------------------------------------------===//

namespace {

struct DaemonFixture {
  TempDir T;
  std::unique_ptr<Daemon> D;

  explicit DaemonFixture(uint64_t MaxQueue = 64, size_t MemEntries = 1024,
                         bool Persistent = true) {
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("d.sock");
    Cfg.Threads = 2;
    Cfg.MaxQueue = MaxQueue;
    if (Persistent)
      Cfg.Cache.Dir = T.str("cache");
    Cfg.Cache.MaxMemoryEntries = MemEntries;
    D = std::make_unique<Daemon>(std::move(Cfg));
  }

  Client client() {
    auto C = Client::connect(T.str("d.sock"));
    EXPECT_TRUE(static_cast<bool>(C));
    return std::move(*C);
  }
};

} // namespace

TEST(ServeDaemon, PingAndStats) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  auto Pong = C.callParsed(serializeSimpleRequest(Op::Ping, "p1"));
  ASSERT_TRUE(static_cast<bool>(Pong));
  EXPECT_EQ(Pong->Id, "p1");
  EXPECT_EQ(Pong->Status, "ok");

  auto StatsRaw = C.call(serializeSimpleRequest(Op::Stats, "s1"));
  ASSERT_TRUE(static_cast<bool>(StatsRaw));
  auto Doc = json::parse(*StatsRaw);
  ASSERT_TRUE(Doc.has_value()) << *StatsRaw;
  const json::Value *S = Doc->get("stats");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->get("in_flight")->asU64(), 0u);
  EXPECT_EQ(S->get("max_queue")->asU64(), 64u);
  EXPECT_TRUE(S->get("result_cache")->get("persistent")->asBool());

  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, WarmRepeatIsByteIdenticalToCold) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  EvalRequest Q = basicRequest();
  Q.Policies = mem::MemoryPolicy::allPresets();
  std::string Frame = serializeEvalRequest(Q);

  auto Cold = C.call(Frame);
  ASSERT_TRUE(static_cast<bool>(Cold));
  auto Warm = C.call(Frame);
  ASSERT_TRUE(static_cast<bool>(Warm));
  EXPECT_EQ(*Cold, *Warm) << "warm replay must be byte-identical";

  auto P = parseResponse(*Cold);
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Status, "ok");
  auto Rep = json::parse(P->Report);
  ASSERT_TRUE(Rep.has_value());
  EXPECT_EQ(Rep->get("schema")->asString(), "cerb-oracle-report/1");
  EXPECT_EQ(Rep->get("stats")->get("jobs")->asU64(),
            mem::MemoryPolicy::allPresets().size());

  CacheStats CS = F.D->cache().stats();
  EXPECT_EQ(CS.Misses, 1u);
  EXPECT_EQ(CS.MemoryHits, 1u);

  // A fresh daemon on the same cache directory serves it from disk —
  // still byte-identical.
  F.D->requestDrain();
  ASSERT_EQ(F.D->waitUntilDrained(), 0);
  DaemonConfig Cfg2;
  Cfg2.SocketPath = F.T.str("d2.sock");
  Cfg2.Threads = 2;
  Cfg2.Cache.Dir = F.T.str("cache");
  Daemon D2(std::move(Cfg2));
  ASSERT_TRUE(static_cast<bool>(D2.start()));
  auto C2 = Client::connect(F.T.str("d2.sock"));
  ASSERT_TRUE(static_cast<bool>(C2));
  auto Disk = C2->call(Frame);
  ASSERT_TRUE(static_cast<bool>(Disk));
  EXPECT_EQ(*Disk, *Cold);
  EXPECT_EQ(D2.cache().stats().DiskHits, 1u);
  D2.requestDrain();
  EXPECT_EQ(D2.waitUntilDrained(), 0);
}

TEST(ServeDaemon, DistinctRequestsDoNotShareEntries) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  EvalRequest A = basicRequest();
  EvalRequest B = basicRequest();
  B.Source = "int main(void) { return 1; }\n";
  auto RA = C.callParsed(serializeEvalRequest(A));
  auto RB = C.callParsed(serializeEvalRequest(B));
  ASSERT_TRUE(static_cast<bool>(RA));
  ASSERT_TRUE(static_cast<bool>(RB));
  EXPECT_NE(RA->Report, RB->Report);
  EXPECT_EQ(F.D->cache().stats().Misses, 2u);

  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, CompileErrorsTravelInsideReports) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  EvalRequest Q = basicRequest();
  Q.Source = "int main(void) { return not c at all; }";
  auto R = C.callParsed(serializeEvalRequest(Q));
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "ok") << "static errors are results, not failures";
  auto Rep = json::parse(R->Report);
  ASSERT_TRUE(Rep.has_value());
  EXPECT_EQ(Rep->get("stats")->get("compile_errors")->asU64(), 1u);
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, ZeroQueueRejectsEveryEvalDeterministically) {
  DaemonFixture F(/*MaxQueue=*/0);
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  auto R = C.callParsed(serializeEvalRequest(basicRequest()));
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "overloaded");
  // Control ops still answer under load shedding.
  auto Pong = C.callParsed(serializeSimpleRequest(Op::Ping, "p"));
  ASSERT_TRUE(static_cast<bool>(Pong));
  EXPECT_EQ(Pong->Status, "ok");
  EXPECT_EQ(F.D->snapshot().Overloaded, 1u);
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, MalformedFramesGetErrorResponses) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  auto R = C.callParsed("{\"schema\": \"cerb-serve/1\", \"op\": \"eval\"}");
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "error");
  EXPECT_NE(R->Error.find("source"), std::string::npos);
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

TEST(ServeDaemon, DrainCompletesInFlightRequests) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  EvalRequest Q = basicRequest();
  Q.Name = "busy";
  Q.Source = "#include <stdio.h>\n"
             "int g;\n"
             "int main(void) {\n"
             "  int a = (g = 1) + (g = 2);\n"
             "  int b = (g = 3) + (g = 4);\n"
             "  printf(\"%d %d %d\\n\", a, b, g);\n"
             "  return 0;\n"
             "}\n";
  Q.Policies = mem::MemoryPolicy::allPresets();

  // Launch the call from another thread, drain as soon as the daemon has
  // admitted it: the drain must wait for the answer (zero drops).
  std::string Response;
  bool CallOk = false;
  std::thread Caller([&] {
    auto R = C.call(serializeEvalRequest(Q));
    if (R) {
      CallOk = true;
      Response = *R;
    }
  });
  while (F.D->snapshot().Admitted == 0 && F.D->snapshot().InFlight == 0)
    std::this_thread::yield();
  F.D->requestDrain();
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
  Caller.join();

  ASSERT_TRUE(CallOk) << "the in-flight request must be answered";
  auto P = parseResponse(Response);
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Status, "ok");

  // After the drain, new connections are not served.
  auto Late = Client::connect(F.T.str("d.sock"));
  EXPECT_FALSE(static_cast<bool>(Late));
}

TEST(ServeDaemon, ShutdownOpTriggersDrain) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  auto R = C.callParsed(serializeSimpleRequest(Op::Shutdown, "bye"));
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Status, "ok");
  EXPECT_EQ(F.D->waitUntilDrained(), 0);
}

//===----------------------------------------------------------------------===//
// Eval determinism without sockets
//===----------------------------------------------------------------------===//

TEST(ServeEval, ReportBytesAreAPureFunctionOfTheRequest) {
  EvalRequest Q = basicRequest();
  Q.Policies = mem::MemoryPolicy::allPresets();
  oracle::CompileCache CacheA, CacheB;
  std::string A = evaluateToReport(Q, CacheA);
  // A *shared, already-warm* compile cache must not change the bytes.
  std::string B1 = evaluateToReport(Q, CacheB);
  std::string B2 = evaluateToReport(Q, CacheB);
  EXPECT_EQ(A, B1);
  EXPECT_EQ(B1, B2);
  EXPECT_GT(CacheB.hits(), 0u);
}
