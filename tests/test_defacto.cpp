//===-- tests/test_defacto.cpp - the de facto suite across all models -----===//
//
// The paper's experimental backbone: every semantic test case, checked
// against its expected behaviour under every memory object model
// instantiation, as a parameterised sweep.
//
//===----------------------------------------------------------------------===//

#include "defacto/Questions.h"
#include "defacto/Suite.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::defacto;

//===----------------------------------------------------------------------===//
// Question registry
//===----------------------------------------------------------------------===//

TEST(Questions, CategoryTableMatchesPaper) {
  const auto &Cats = categories();
  ASSERT_EQ(Cats.size(), 22u); // the paper's 22 categories
  EXPECT_EQ(Cats.front().Name, "Pointer provenance basics");
  EXPECT_EQ(Cats.front().Count, 3u);
  EXPECT_EQ(Cats.back().Name, "Other questions");
  unsigned Total = 0;
  for (const Category &C : Cats)
    Total += C.Count;
  EXPECT_EQ(Total, questions().size());
}

TEST(Questions, ClassificationTotalsMatchPaper) {
  auto T = classificationTotals();
  EXPECT_EQ(T.PaperStated, 85u);
  EXPECT_EQ(T.IsoUnclear, 38u);      // §2: "for 38 the ISO standard is unclear"
  EXPECT_EQ(T.DefactoUnclear, 28u);  // "for 28 the de facto standards are unclear"
  EXPECT_EQ(T.Diverge, 26u);         // "for 26 there are significant differences"
}

TEST(Questions, CitedAnchorsLandInTheRightCategories) {
  // The reconstruction must place the paper's cited question numbers in
  // the categories the paper discusses them under.
  ASSERT_NE(findQuestion("Q25"), nullptr);
  EXPECT_EQ(findQuestion("Q25")->Category,
            "Pointer relational comparison (with <, >, <=, or >=)");
  EXPECT_EQ(findQuestion("Q31")->Category, "Pointer arithmetic");
  EXPECT_EQ(findQuestion("Q75")->Category,
            "Effective types and character arrays");
  EXPECT_EQ(findQuestion("Q49")->Category, "Unspecified values");
  EXPECT_EQ(findQuestion("Q52")->Category, "Unspecified values");
  EXPECT_EQ(findQuestion("Q5")->Category,
            "Pointer provenance via integer types");
  EXPECT_EQ(findQuestion("Q9")->Category,
            "Pointers involving multiple provenances");
}

TEST(Questions, LookupMissReturnsNull) {
  EXPECT_EQ(findQuestion("Q999"), nullptr);
}

//===----------------------------------------------------------------------===//
// The suite sweep: every test under every model
//===----------------------------------------------------------------------===//

namespace {

struct SweepCase {
  const TestCase *Test;
  const char *Model;
};

std::vector<SweepCase> allSweepCases() {
  std::vector<SweepCase> Out;
  for (const TestCase &T : testSuite())
    for (const char *M : {"concrete", "defacto", "strict-iso", "cheri"})
      if (T.Expected.count(M))
        Out.push_back(SweepCase{&T, M});
  return Out;
}

mem::MemoryPolicy policyByName(const std::string &N) {
  if (N == "concrete")
    return mem::MemoryPolicy::concrete();
  if (N == "strict-iso")
    return mem::MemoryPolicy::strictIso();
  if (N == "cheri")
    return mem::MemoryPolicy::cheri();
  return mem::MemoryPolicy::defacto();
}

} // namespace

class DeFactoSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(DeFactoSweep, ExpectedBehaviour) {
  const SweepCase &C = GetParam();
  TestResult R = runTest(*C.Test, policyByName(C.Model));
  ASSERT_TRUE(R.CompileOk) << R.CompileError;
  ASSERT_TRUE(R.HasExpectation);
  EXPECT_TRUE(R.Pass) << "expected "
                      << C.Test->Expected.at(C.Model).str() << "\ngot:\n"
                      << [&] {
                           std::string S;
                           for (const exec::Outcome &O :
                                R.Outcomes.Distinct)
                             S += "  " + O.str() + "\n";
                           return S;
                         }();
}

INSTANTIATE_TEST_SUITE_P(
    AllTestsAllModels, DeFactoSweep, ::testing::ValuesIn(allSweepCases()),
    [](const ::testing::TestParamInfo<SweepCase> &Info) {
      std::string Name = Info.param.Test->Name + "_" + Info.param.Model;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Structural properties of the suite
//===----------------------------------------------------------------------===//

TEST(Suite, EveryTestHasAllFourExpectations) {
  for (const TestCase &T : testSuite()) {
    EXPECT_EQ(T.Expected.size(), 4u) << T.Name;
    EXPECT_FALSE(T.Description.empty()) << T.Name;
    EXPECT_FALSE(T.QuestionId.empty()) << T.Name;
  }
}

TEST(Suite, NamesAreUnique) {
  std::set<std::string> Names;
  for (const TestCase &T : testSuite())
    EXPECT_TRUE(Names.insert(T.Name).second) << T.Name;
}

TEST(Suite, FindTestWorks) {
  EXPECT_NE(findTest("provenance_basic_global_yx"), nullptr);
  EXPECT_EQ(findTest("no_such_test"), nullptr);
}

TEST(Suite, HeadlineExampleDivergesBetweenModels) {
  // The §2.1 observable: concrete executes, provenance models flag UB.
  const TestCase *T = findTest("provenance_basic_global_yx");
  ASSERT_NE(T, nullptr);
  TestResult Concrete = runTest(*T, mem::MemoryPolicy::concrete());
  TestResult DeFacto = runTest(*T, mem::MemoryPolicy::defacto());
  ASSERT_EQ(Concrete.Outcomes.Distinct.size(), 1u);
  ASSERT_EQ(DeFacto.Outcomes.Distinct.size(), 1u);
  EXPECT_EQ(Concrete.Outcomes.Distinct[0].Kind, exec::OutcomeKind::Exit);
  EXPECT_EQ(Concrete.Outcomes.Distinct[0].Stdout,
            "x=1 y=11 *p=11 *q=11\n");
  EXPECT_TRUE(DeFacto.Outcomes.Distinct[0].isUndef(
      mem::UBKind::AccessOutOfBounds));
}
