//===-- tests/test_exhaustive.cpp - drivers, nondeterminism, models -------===//

#include "conc/Conc.h"
#include "exec/Pipeline.h"

#include <gtest/gtest.h>
#include <set>

using namespace cerb;
using namespace cerb::exec;

namespace {

ExhaustiveResult explore(std::string_view Src,
                         mem::MemoryPolicy P = mem::MemoryPolicy::defacto(),
                         uint64_t MaxPaths = 2048) {
  RunOptions Opts;
  Opts.Policy = P;
  Opts.MaxPaths = MaxPaths;
  auto R = evaluateExhaustive(Src, Opts);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.error().str());
  return R ? *R : ExhaustiveResult{};
}

std::set<std::string> stdouts(const ExhaustiveResult &R) {
  std::set<std::string> Out;
  for (const Outcome &O : R.Distinct)
    if (O.Kind == OutcomeKind::Exit)
      Out.insert(O.Stdout);
  return Out;
}

} // namespace

TEST(Exhaustive, DeterministicProgramHasOnePath) {
  auto R = explore(R"(
#include <stdio.h>
int main(void) { printf("once\n"); return 0; }
)");
  EXPECT_EQ(R.PathsExplored, 1u);
  ASSERT_EQ(R.Distinct.size(), 1u);
  EXPECT_FALSE(R.Truncated);
}

TEST(Exhaustive, IndeterminatelySequencedCallsGiveBothOrders) {
  // §5.6: f() and g() bodies are indeterminately sequenced; both orders
  // are allowed executions and exhaustive mode must find both.
  auto R = explore(R"(
#include <stdio.h>
int g;
int setg(int v) { g = v; return 0; }
int main(void) {
  int r = setg(1) + setg(2);
  printf("%d\n", g);
  return r;
}
)");
  EXPECT_EQ(stdouts(R), (std::set<std::string>{"1\n", "2\n"}));
}

TEST(Exhaustive, ThreeCallsGiveAllFinalValues) {
  auto R = explore(R"(
#include <stdio.h>
int g;
int setg(int v) { g = v; return 0; }
int main(void) {
  int r = setg(1) + setg(2) + setg(3);
  printf("%d\n", g);
  return r;
}
)");
  EXPECT_EQ(stdouts(R), (std::set<std::string>{"1\n", "2\n", "3\n"}));
}

TEST(Exhaustive, UnseqRaceFoundOnEveryPath) {
  auto R = explore("int g; int main(void){ return (g=1) + (g=2); }");
  ASSERT_EQ(R.Distinct.size(), 1u);
  EXPECT_TRUE(R.Distinct[0].isUndef(mem::UBKind::UnsequencedRace));
}

TEST(Exhaustive, ProvenanceEqualityIsNondeterministic) {
  // Q2: the de facto model may or may not consult provenance.
  auto R = explore(R"(
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
  printf("%d\n", &x + 1 == &y);
  return 0;
}
)");
  EXPECT_EQ(stdouts(R), (std::set<std::string>{"0\n", "1\n"}));
  // The concrete model answers purely by address.
  auto C = explore(R"(
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
  printf("%d\n", &x + 1 == &y);
  return 0;
}
)",
                   mem::MemoryPolicy::concrete());
  EXPECT_EQ(stdouts(C), (std::set<std::string>{"1\n"}));
}

TEST(Exhaustive, PathBudgetTruncationIsReported) {
  // Lots of indeterminately sequenced pairs: paths grow combinatorially.
  auto R = explore(R"(
int g;
int s(int v) { g = v; return 0; }
int main(void) {
  int i;
  for (i = 0; i < 10; i++)
    s(i) + s(i + 1);
  return 0;
}
)",
                   mem::MemoryPolicy::defacto(), /*MaxPaths=*/16);
  EXPECT_EQ(R.PathsExplored, 16u);
  EXPECT_TRUE(R.Truncated);
}

TEST(Exhaustive, RandomDriverIsReproducible) {
  auto ProgOr = compile(R"(
#include <stdio.h>
int g;
int s(int v) { g = v; return 0; }
int main(void) { s(1) + s(2); printf("%d\n", g); return 0; }
)");
  ASSERT_TRUE(static_cast<bool>(ProgOr));
  RunOptions Opts;
  Outcome A = runRandom(*ProgOr, Opts, 12345);
  Outcome B = runRandom(*ProgOr, Opts, 12345);
  EXPECT_EQ(A.str(), B.str());
}

TEST(Exhaustive, StepLimitProducesTimeoutOutcome) {
  RunOptions Opts;
  Opts.Limits.MaxSteps = 10'000;
  auto R = evaluateOnce("int main(void){ while (1) {} return 0; }", Opts);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Kind, OutcomeKind::StepLimit);
}

//===----------------------------------------------------------------------===//
// Restricted concurrency (conc/)
//===----------------------------------------------------------------------===//

TEST(Concurrency, RacyThreadsAreDataRace) {
  auto Prog = conc::buildSharedCounterProgram(
      0, {conc::ThreadSpec{{1}, false}, conc::ThreadSpec{{2}, false}});
  auto R = conc::explore(Prog);
  ASSERT_EQ(R.Distinct.size(), 1u);
  EXPECT_TRUE(R.Distinct[0].isUndef(mem::UBKind::DataRace)) <<
      R.Distinct[0].str();
}

TEST(Concurrency, ReadOnlyThreadsDoNotRace) {
  auto Prog = conc::buildSharedCounterProgram(
      7, {conc::ThreadSpec{{0, 0}, true}, conc::ThreadSpec{{0}, true}});
  auto R = conc::explore(Prog);
  ASSERT_EQ(R.Distinct.size(), 1u);
  EXPECT_EQ(R.Distinct[0].Kind, OutcomeKind::Exit);
  EXPECT_EQ(R.Distinct[0].ExitCode, 7);
}

TEST(Concurrency, WriterPlusReaderRaces) {
  auto Prog = conc::buildSharedCounterProgram(
      0, {conc::ThreadSpec{{5}, false}, conc::ThreadSpec{{0}, true}});
  auto R = conc::explore(Prog);
  ASSERT_EQ(R.Distinct.size(), 1u);
  EXPECT_TRUE(R.Distinct[0].isUndef(mem::UBKind::DataRace));
}

TEST(Concurrency, SingleWriterNoRace) {
  auto Prog =
      conc::buildSharedCounterProgram(0, {conc::ThreadSpec{{9}, false}});
  auto R = conc::explore(Prog);
  ASSERT_EQ(R.Distinct.size(), 1u);
  EXPECT_EQ(R.Distinct[0].ExitCode, 9);
}

TEST(Concurrency, AtomicWritersDoNotRace) {
  // The restricted C11 regime (§5.2): seq_cst accesses synchronise, so two
  // atomic writers are race-free and exhaustive mode sees both final
  // values.
  conc::ThreadSpec T1{{1}, false, /*Atomic=*/true};
  conc::ThreadSpec T2{{2}, false, /*Atomic=*/true};
  auto Prog = conc::buildSharedCounterProgram(0, {T1, T2});
  auto R = conc::explore(Prog);
  std::set<int> Finals;
  for (const Outcome &O : R.Distinct) {
    ASSERT_EQ(O.Kind, OutcomeKind::Exit) << O.str();
    Finals.insert(O.ExitCode);
  }
  EXPECT_EQ(Finals, (std::set<int>{1, 2}));
}

TEST(Concurrency, AtomicVsNonAtomicStillRaces) {
  // Mixed atomic / non-atomic conflicting accesses remain a data race
  // (only atomic/atomic pairs synchronise).
  conc::ThreadSpec T1{{1}, false, /*Atomic=*/true};
  conc::ThreadSpec T2{{2}, false, /*Atomic=*/false};
  auto Prog = conc::buildSharedCounterProgram(0, {T1, T2});
  auto R = conc::explore(Prog);
  bool SawRace = false;
  for (const Outcome &O : R.Distinct)
    if (O.isUndef(mem::UBKind::DataRace))
      SawRace = true;
  EXPECT_TRUE(SawRace);
}

TEST(Concurrency, AtomicReadersSeeSomeWrite) {
  conc::ThreadSpec W{{5}, false, /*Atomic=*/true};
  conc::ThreadSpec R1{{0}, true, /*Atomic=*/true};
  auto Prog = conc::buildSharedCounterProgram(7, {W, R1});
  auto R = conc::explore(Prog);
  for (const Outcome &O : R.Distinct)
    EXPECT_EQ(O.Kind, OutcomeKind::Exit) << O.str();
}
