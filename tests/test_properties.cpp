//===-- tests/test_properties.cpp - cross-cutting semantic invariants -----===//
//
// Property-style sweeps over generated programs and random values:
//  - a pseudorandom path's outcome is always among the exhaustive set;
//  - deterministic (choice-free) programs have exactly one outcome;
//  - memory serialize/deserialize round-trips;
//  - allocations never overlap;
//  - UB-free generated programs behave identically under every model.
//
//===----------------------------------------------------------------------===//

#include "csmith/Generator.h"
#include "exec/Pipeline.h"
#include "mem/Memory.h"

#include <gtest/gtest.h>
#include <set>

using namespace cerb;

//===----------------------------------------------------------------------===//
// Driver coherence
//===----------------------------------------------------------------------===//

namespace {

/// Programs with genuine nondeterminism (indet call orders, Q2 equality).
const char *NondetPrograms[] = {
    R"(
#include <stdio.h>
int g;
int s(int v) { g = v; return 0; }
int main(void) { s(1) + s(2); printf("%d\n", g); return 0; }
)",
    R"(
#include <stdio.h>
int y, x;
int main(void) { printf("%d\n", &x + 1 == &y); return 0; }
)",
    R"(
#include <stdio.h>
int g;
int s(int v) { g = g * 10 + v; return v; }
int main(void) { int r = s(1) + s(2) + s(3); printf("%d %d\n", g, r);
  return 0; }
)",
};

} // namespace

class RandomInExhaustive
    : public ::testing::TestWithParam<std::tuple<int, uint64_t, int>> {};

TEST_P(RandomInExhaustive, EveryRandomPathIsAnAllowedBehaviour) {
  const char *Src = NondetPrograms[std::get<0>(GetParam())];
  uint64_t Seed = std::get<1>(GetParam());
  // Membership must hold under every memory policy, and against the
  // exhaustive set produced by either explorer (serial and parallel agree
  // by the determinism contract — checked directly in test_explore.cpp).
  const mem::MemoryPolicy Policies[] = {
      mem::MemoryPolicy::defacto(), mem::MemoryPolicy::concrete(),
      mem::MemoryPolicy::strictIso(), mem::MemoryPolicy::cheri()};
  const mem::MemoryPolicy &Policy = Policies[std::get<2>(GetParam())];
  auto Prog = exec::compile(Src);
  ASSERT_TRUE(static_cast<bool>(Prog));
  exec::RunOptions Opts;
  Opts.Policy = Policy;
  Opts.ExploreJobs = Seed % 2 ? 2 : 1; // alternate serial/parallel explorer
  auto Ex = exec::runExhaustive(*Prog, Opts);
  ASSERT_FALSE(Ex.Truncated);
  std::set<std::string> Allowed;
  for (const exec::Outcome &O : Ex.Distinct)
    Allowed.insert(O.str());
  exec::Outcome R = exec::runRandom(*Prog, Opts, Seed);
  EXPECT_TRUE(Allowed.count(R.str()))
      << "random path under " << Policy.Name
      << " produced a behaviour outside the exhaustive set:\n"
      << R.str();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomInExhaustive,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 7u, 99u, 1234u, 777777u),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Properties, GeneratedProgramsAreDeterministic) {
  // The csmith-lite generator emits choice-free programs: exhaustive mode
  // must find exactly one path and one outcome.
  for (uint64_t Seed : {11u, 12u, 13u, 14u}) {
    csmith::GenOptions O;
    O.Seed = Seed;
    auto Prog = exec::compile(csmith::generateProgram(O));
    ASSERT_TRUE(static_cast<bool>(Prog)) << "seed " << Seed;
    exec::RunOptions Opts;
    auto Ex = exec::runExhaustive(*Prog, Opts);
    EXPECT_EQ(Ex.PathsExplored, 1u) << "seed " << Seed;
    EXPECT_EQ(Ex.Distinct.size(), 1u) << "seed " << Seed;
  }
}

TEST(Properties, ModelsAgreeOnUBFreePrograms) {
  for (uint64_t Seed : {21u, 22u, 23u}) {
    csmith::GenOptions O;
    O.Seed = Seed;
    std::string Src = csmith::generateProgram(O);
    std::string First;
    for (auto P :
         {mem::MemoryPolicy::concrete(), mem::MemoryPolicy::defacto(),
          mem::MemoryPolicy::strictIso(), mem::MemoryPolicy::cheri()}) {
      exec::RunOptions Opts;
      Opts.Policy = P;
      auto R = exec::evaluateOnce(Src, Opts);
      ASSERT_TRUE(static_cast<bool>(R)) << P.Name;
      ASSERT_EQ(R->Kind, exec::OutcomeKind::Exit)
          << P.Name << " seed " << Seed << ": " << R->str();
      if (First.empty())
        First = R->Stdout;
      else
        EXPECT_EQ(R->Stdout, First) << P.Name << " seed " << Seed;
    }
  }
}

//===----------------------------------------------------------------------===//
// Memory invariants
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic pseudo-random int in [lo, hi].
struct MiniRng {
  uint64_t S;
  explicit MiniRng(uint64_t Seed) : S(Seed ? Seed : 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  Int128 in(Int128 Lo, Int128 Hi) {
    UInt128 Range = static_cast<UInt128>(Hi - Lo) + 1; // may be 2^64
    return Lo + static_cast<Int128>(UInt128(next()) % Range);
  }
};

} // namespace

class SerializeRoundtrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeRoundtrip, IntValuesOfEveryKind) {
  ail::TagTable Tags;
  ail::ImplEnv Env(Tags);
  LeftmostScheduler Sched;
  mem::Memory M(Env, Sched, mem::MemoryPolicy::defacto());
  MiniRng R(GetParam());

  const ail::IntKind Kinds[] = {
      ail::IntKind::Bool,   ail::IntKind::Char,  ail::IntKind::SChar,
      ail::IntKind::UChar,  ail::IntKind::Short, ail::IntKind::UShort,
      ail::IntKind::Int,    ail::IntKind::UInt,  ail::IntKind::Long,
      ail::IntKind::ULong,  ail::IntKind::LongLong,
      ail::IntKind::ULongLong};
  for (ail::IntKind K : Kinds) {
    ail::CType Ty = ail::CType::makeInteger(K);
    mem::PointerValue P = M.allocateObject(Ty, "cell", false);
    for (int I = 0; I < 8; ++I) {
      Int128 V = R.in(Env.minOf(K), Env.maxOf(K));
      ASSERT_TRUE(static_cast<bool>(
          M.store(Ty, P, mem::MemValue::integer(Ty, mem::IntegerValue(V)))));
      auto L = M.load(Ty, P);
      ASSERT_TRUE(static_cast<bool>(L));
      EXPECT_EQ(L->IV.V, V) << ail::intKindName(K);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundtrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Properties, AllocationsNeverOverlap) {
  ail::TagTable Tags;
  ail::ImplEnv Env(Tags);
  LeftmostScheduler Sched;
  mem::Memory M(Env, Sched, mem::MemoryPolicy::defacto());
  MiniRng R(42);
  for (int I = 0; I < 200; ++I) {
    if (R.next() % 2)
      M.allocateObject(ail::CType::makeArray(
                           ail::CType::charTy(),
                           1 + static_cast<uint64_t>(R.next() % 31)),
                       "obj", false);
    else
      M.allocateRegion(1 + R.next() % 63, 1ull << (R.next() % 5));
  }
  const auto &Allocs = M.allocations();
  for (size_t A = 0; A < Allocs.size(); ++A)
    for (size_t B = A + 1; B < Allocs.size(); ++B) {
      bool Disjoint = Allocs[A].Base + Allocs[A].Size <= Allocs[B].Base ||
                      Allocs[B].Base + Allocs[B].Size <= Allocs[A].Base;
      ASSERT_TRUE(Disjoint) << A << " vs " << B;
    }
}

TEST(Properties, ExhaustiveIsExhaustiveForQ2) {
  // Q2's nondeterministic equality has exactly two outcomes; the
  // exhaustive driver must find both and nothing else.
  auto Prog = exec::compile(R"(
#include <stdio.h>
int y, x;
int main(void) { printf("%d\n", &x + 1 == &y); return 0; }
)");
  ASSERT_TRUE(static_cast<bool>(Prog));
  exec::RunOptions Opts;
  auto Ex = exec::runExhaustive(*Prog, Opts);
  EXPECT_EQ(Ex.PathsExplored, 2u);
  EXPECT_EQ(Ex.Distinct.size(), 2u);
}

TEST(Properties, EventCountersTrackQ31) {
  // The OOB-transient event fires exactly when a pointer leaves its
  // object's footprint.
  auto Prog = exec::compile(R"(
int main(void) {
  int a[4];
  int *p = a + 6;
  p = p - 6;
  return 0;
}
)");
  ASSERT_TRUE(static_cast<bool>(Prog));
  LeftmostScheduler Sched;
  exec::Evaluator Eval(*Prog, Sched, mem::MemoryPolicy::defacto());
  exec::Outcome O = Eval.run();
  EXPECT_EQ(O.Kind, exec::OutcomeKind::Exit);
  EXPECT_GE(Eval.events().OutOfBoundsTransient, 1u);
}
