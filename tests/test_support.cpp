//===-- tests/test_support.cpp - support library unit tests ---------------===//

#include "support/Expected.h"
#include "support/Format.h"
#include "support/Scheduler.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <filesystem>

using namespace cerb;

TEST(Format, BasicSubstitution) {
  EXPECT_EQ(fmt("x={0} y={1}", 1, 2), "x=1 y=2");
  EXPECT_EQ(fmt("{0}{0}{0}", "ab"), "ababab");
  EXPECT_EQ(fmt("no placeholders"), "no placeholders");
}

TEST(Format, OutOfRangeIndexLeftVerbatim) {
  EXPECT_EQ(fmt("{1}", 5), "{1}");
  EXPECT_EQ(fmt("{x}", 5), "{x}");
  EXPECT_EQ(fmt("{", 5), "{");
}

TEST(Format, Int128Rendering) {
  EXPECT_EQ(toString(Int128(0)), "0");
  EXPECT_EQ(toString(Int128(-1)), "-1");
  EXPECT_EQ(toString(Int128(1234567890123456789LL)), "1234567890123456789");
  // INT128_MIN must not overflow during negation.
  Int128 Min = Int128(1) << 126;
  Min = -Min - Min; // == -2^127
  EXPECT_EQ(toString(Min),
            "-170141183460469231731687303715884105728");
  UInt128 Big = ~UInt128(0);
  EXPECT_EQ(toString(Big), "340282366920938463463374607431768211455");
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Expected, ValueAndError) {
  Expected<int> V(42);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 42);

  Expected<int> E(err("boom", SourceLoc(3, 4), "6.5p2"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.error().Message, "boom");
  EXPECT_EQ(E.error().str(), "3:4: boom [ISO C11 6.5p2]");
}

namespace {
size_t openFdCount() {
  size_t N = 0;
  std::error_code EC;
  for ([[maybe_unused]] const auto &E :
       std::filesystem::directory_iterator("/proc/self/fd", EC))
    ++N;
  return N;
}
} // namespace

TEST(Subprocess, CapturesStdout) {
  bool TimedOut = true;
  auto Out = captureCommand("echo hello", 0, &TimedOut);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, "hello\n");
  EXPECT_FALSE(TimedOut);
}

TEST(Subprocess, NonzeroExitIsFailureNotTimeout) {
  bool TimedOut = true;
  EXPECT_FALSE(captureCommand("exit 3", 0, &TimedOut).has_value());
  EXPECT_FALSE(TimedOut);
}

TEST(Subprocess, TimeoutKillsWithinDeadline) {
  bool TimedOut = false;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(captureCommand("sleep 30", 50, &TimedOut).has_value());
  EXPECT_TRUE(TimedOut);
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  EXPECT_LT(Ms, 10'000) << "timeout path must not wait for the child";
}

// The regression this pins: the old popen-based timeout path leaked the
// pipe descriptor and never reaped the killed child, so a campaign that
// timed out thousands of host runs exhausted fds and accumulated zombies.
TEST(Subprocess, TimeoutLoopLeaksNeitherFdsNorZombies) {
  // Settle lazily-opened descriptors before measuring.
  (void)captureCommand("sleep 1", 20);
  size_t Before = openFdCount();
  for (int I = 0; I < 40; ++I) {
    bool TimedOut = false;
    EXPECT_FALSE(captureCommand("sleep 30", 10, &TimedOut).has_value());
    EXPECT_TRUE(TimedOut);
  }
  size_t After = openFdCount();
  EXPECT_LE(After, Before + 2)
      << "timed-out children must not leak pipe descriptors";
  // Every killed child was reaped: no zombies left to collect.
  errno = 0;
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(Scheduler, LeftmostAlwaysZero) {
  LeftmostScheduler S;
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(S.choose(5, "t"), 0u);
}

TEST(Scheduler, RandomIsDeterministicPerSeed) {
  RandomScheduler A(7), B(7), C(8);
  std::vector<unsigned> VA, VB, VC;
  for (int I = 0; I < 32; ++I) {
    VA.push_back(A.choose(10, "t"));
    VB.push_back(B.choose(10, "t"));
    VC.push_back(C.choose(10, "t"));
  }
  EXPECT_EQ(VA, VB);
  EXPECT_NE(VA, VC);
}

TEST(Scheduler, RandomCoversAlternatives) {
  RandomScheduler S(99);
  std::vector<bool> Seen(4, false);
  for (int I = 0; I < 200; ++I)
    Seen[S.choose(4, "t")] = true;
  for (bool B : Seen)
    EXPECT_TRUE(B);
}

TEST(Scheduler, TraceReplaysPrefixThenZero) {
  TraceScheduler S({2, 1});
  EXPECT_EQ(S.choose(3, "a"), 2u);
  EXPECT_EQ(S.choose(2, "b"), 1u);
  EXPECT_EQ(S.choose(4, "c"), 0u); // past the prefix
  EXPECT_EQ(S.trace(), (std::vector<unsigned>{2, 1, 0}));
  EXPECT_EQ(S.widths(), (std::vector<unsigned>{3, 2, 4}));
}

TEST(Scheduler, TraceClampsStalePrefix) {
  TraceScheduler S({5});
  EXPECT_EQ(S.choose(3, "a"), 2u); // clamped to N-1
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

namespace {

TEST(FaultInjector, DisarmedNeverFails) {
  fault::Injector::instance().disarm();
  EXPECT_FALSE(fault::active());
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(fault::shouldFail("socket.read"));
}

TEST(FaultInjector, BareSiteFiresAlways) {
  fault::ScopedFaults F(1, {{"socket.read", 1.0, 0, 0, UINT64_MAX, ECONNRESET}});
  EXPECT_TRUE(fault::active());
  int E = 0;
  EXPECT_TRUE(fault::shouldFail("socket.read", &E));
  EXPECT_EQ(E, ECONNRESET);
  EXPECT_FALSE(fault::shouldFail("socket.write"));
  EXPECT_EQ(fault::Injector::instance().hits("socket.read"), 1u);
  EXPECT_EQ(fault::Injector::instance().shots("socket.read"), 1u);
  EXPECT_EQ(fault::Injector::instance().hits("socket.write"), 1u);
  EXPECT_EQ(fault::Injector::instance().shots("socket.write"), 0u);
}

TEST(FaultInjector, NthFiresExactlyOnce) {
  fault::FaultSpec S;
  S.Site = "cache.rename";
  S.Nth = 3;
  fault::ScopedFaults F(7, {S});
  std::vector<bool> Fired;
  for (int I = 0; I < 6; ++I)
    Fired.push_back(fault::shouldFail("cache.rename"));
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, false, false, false}));
}

TEST(FaultInjector, EveryKthHit) {
  fault::FaultSpec S;
  S.Site = "x";
  S.Every = 3;
  fault::ScopedFaults F(7, {S});
  int Shots = 0;
  for (int I = 0; I < 9; ++I)
    Shots += fault::shouldFail("x") ? 1 : 0;
  EXPECT_EQ(Shots, 3); // hits 3, 6, 9
}

TEST(FaultInjector, MaxShotsStopsFiring) {
  fault::FaultSpec S;
  S.Site = "x";
  S.Every = 1; // would fire every hit
  S.MaxShots = 2;
  fault::ScopedFaults F(7, {S});
  int Shots = 0;
  for (int I = 0; I < 10; ++I)
    Shots += fault::shouldFail("x") ? 1 : 0;
  EXPECT_EQ(Shots, 2);
}

TEST(FaultInjector, ProbabilityIsDeterministicPerSeed) {
  auto Run = [](uint64_t Seed) {
    fault::FaultSpec S;
    S.Site = "socket.read";
    S.Probability = 0.3;
    fault::ScopedFaults F(Seed, {S});
    std::vector<bool> Out;
    for (int I = 0; I < 64; ++I)
      Out.push_back(fault::shouldFail("socket.read"));
    return Out;
  };
  EXPECT_EQ(Run(42), Run(42));      // same seed, same schedule
  EXPECT_NE(Run(42), Run(43));      // different seed, different schedule
  int Shots = 0;
  for (bool B : Run(42))
    Shots += B ? 1 : 0;
  EXPECT_GT(Shots, 0);  // p=0.3 over 64 hits: statistically certain
  EXPECT_LT(Shots, 64);
}

TEST(FaultInjector, SpecStringRoundTrip) {
  fault::ScopedFaults F(
      "seed=42;socket.read,p=0.05,errno=ECONNRESET;cache.rename,nth=3;"
      "socket.write,every=7,max=2,errno=EPIPE");
  ASSERT_TRUE(F.Ok) << F.Error;
  auto &I = fault::Injector::instance();
  EXPECT_EQ(I.seed(), 42u);
  std::string Canon = I.describe();
  EXPECT_NE(Canon.find("seed=42"), std::string::npos);
  EXPECT_NE(Canon.find("socket.read,p=0.05,errno=ECONNRESET"),
            std::string::npos);
  EXPECT_NE(Canon.find("cache.rename,nth=3"), std::string::npos);
  // Re-arming from describe() reproduces the schedule.
  std::string Spec = Canon;
  auto R = I.armFromSpec(Spec);
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
  EXPECT_EQ(I.describe(), Spec);
}

TEST(FaultInjector, BadSpecsRejected) {
  auto &I = fault::Injector::instance();
  EXPECT_FALSE(static_cast<bool>(I.armFromSpec("seed=nope")));
  EXPECT_FALSE(static_cast<bool>(I.armFromSpec("site,p=2.0")));
  EXPECT_FALSE(static_cast<bool>(I.armFromSpec("site,errno=EWHATEVER")));
  EXPECT_FALSE(static_cast<bool>(I.armFromSpec("site,frob=1")));
  EXPECT_FALSE(static_cast<bool>(I.armFromSpec(",p=0.5")));
  I.disarm();
}

TEST(FaultInjector, ErrnoNames) {
  EXPECT_EQ(fault::Injector::errnoByName("ECONNRESET"), ECONNRESET);
  EXPECT_EQ(fault::Injector::errnoByName("EINTR"), EINTR);
  EXPECT_EQ(fault::Injector::errnoByName("ENOSPC"), ENOSPC);
  EXPECT_EQ(fault::Injector::errnoByName("17"), 17);
  EXPECT_EQ(fault::Injector::errnoByName("EBOGUS"), -1);
  EXPECT_STREQ(fault::Injector::errnoName(ECONNRESET), "ECONNRESET");
}

TEST(FaultInjector, TotalShotsAggregates) {
  fault::ScopedFaults F(1, {{"a", 1.0, 0, 0, UINT64_MAX, 5},
                            {"b", 1.0, 0, 0, UINT64_MAX, 5}});
  fault::shouldFail("a");
  fault::shouldFail("a");
  fault::shouldFail("b");
  EXPECT_EQ(fault::Injector::instance().totalShots(), 3u);
}

} // namespace
