//===-- tests/test_support.cpp - support library unit tests ---------------===//

#include "support/Expected.h"
#include "support/Format.h"
#include "support/Scheduler.h"
#include "support/Subprocess.h"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cerrno>
#include <chrono>
#include <filesystem>

using namespace cerb;

TEST(Format, BasicSubstitution) {
  EXPECT_EQ(fmt("x={0} y={1}", 1, 2), "x=1 y=2");
  EXPECT_EQ(fmt("{0}{0}{0}", "ab"), "ababab");
  EXPECT_EQ(fmt("no placeholders"), "no placeholders");
}

TEST(Format, OutOfRangeIndexLeftVerbatim) {
  EXPECT_EQ(fmt("{1}", 5), "{1}");
  EXPECT_EQ(fmt("{x}", 5), "{x}");
  EXPECT_EQ(fmt("{", 5), "{");
}

TEST(Format, Int128Rendering) {
  EXPECT_EQ(toString(Int128(0)), "0");
  EXPECT_EQ(toString(Int128(-1)), "-1");
  EXPECT_EQ(toString(Int128(1234567890123456789LL)), "1234567890123456789");
  // INT128_MIN must not overflow during negation.
  Int128 Min = Int128(1) << 126;
  Min = -Min - Min; // == -2^127
  EXPECT_EQ(toString(Min),
            "-170141183460469231731687303715884105728");
  UInt128 Big = ~UInt128(0);
  EXPECT_EQ(toString(Big), "340282366920938463463374607431768211455");
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Expected, ValueAndError) {
  Expected<int> V(42);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 42);

  Expected<int> E(err("boom", SourceLoc(3, 4), "6.5p2"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.error().Message, "boom");
  EXPECT_EQ(E.error().str(), "3:4: boom [ISO C11 6.5p2]");
}

namespace {
size_t openFdCount() {
  size_t N = 0;
  std::error_code EC;
  for ([[maybe_unused]] const auto &E :
       std::filesystem::directory_iterator("/proc/self/fd", EC))
    ++N;
  return N;
}
} // namespace

TEST(Subprocess, CapturesStdout) {
  bool TimedOut = true;
  auto Out = captureCommand("echo hello", 0, &TimedOut);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, "hello\n");
  EXPECT_FALSE(TimedOut);
}

TEST(Subprocess, NonzeroExitIsFailureNotTimeout) {
  bool TimedOut = true;
  EXPECT_FALSE(captureCommand("exit 3", 0, &TimedOut).has_value());
  EXPECT_FALSE(TimedOut);
}

TEST(Subprocess, TimeoutKillsWithinDeadline) {
  bool TimedOut = false;
  auto Start = std::chrono::steady_clock::now();
  EXPECT_FALSE(captureCommand("sleep 30", 50, &TimedOut).has_value());
  EXPECT_TRUE(TimedOut);
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - Start)
                .count();
  EXPECT_LT(Ms, 10'000) << "timeout path must not wait for the child";
}

// The regression this pins: the old popen-based timeout path leaked the
// pipe descriptor and never reaped the killed child, so a campaign that
// timed out thousands of host runs exhausted fds and accumulated zombies.
TEST(Subprocess, TimeoutLoopLeaksNeitherFdsNorZombies) {
  // Settle lazily-opened descriptors before measuring.
  (void)captureCommand("sleep 1", 20);
  size_t Before = openFdCount();
  for (int I = 0; I < 40; ++I) {
    bool TimedOut = false;
    EXPECT_FALSE(captureCommand("sleep 30", 10, &TimedOut).has_value());
    EXPECT_TRUE(TimedOut);
  }
  size_t After = openFdCount();
  EXPECT_LE(After, Before + 2)
      << "timed-out children must not leak pipe descriptors";
  // Every killed child was reaped: no zombies left to collect.
  errno = 0;
  EXPECT_EQ(waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(Scheduler, LeftmostAlwaysZero) {
  LeftmostScheduler S;
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(S.choose(5, "t"), 0u);
}

TEST(Scheduler, RandomIsDeterministicPerSeed) {
  RandomScheduler A(7), B(7), C(8);
  std::vector<unsigned> VA, VB, VC;
  for (int I = 0; I < 32; ++I) {
    VA.push_back(A.choose(10, "t"));
    VB.push_back(B.choose(10, "t"));
    VC.push_back(C.choose(10, "t"));
  }
  EXPECT_EQ(VA, VB);
  EXPECT_NE(VA, VC);
}

TEST(Scheduler, RandomCoversAlternatives) {
  RandomScheduler S(99);
  std::vector<bool> Seen(4, false);
  for (int I = 0; I < 200; ++I)
    Seen[S.choose(4, "t")] = true;
  for (bool B : Seen)
    EXPECT_TRUE(B);
}

TEST(Scheduler, TraceReplaysPrefixThenZero) {
  TraceScheduler S({2, 1});
  EXPECT_EQ(S.choose(3, "a"), 2u);
  EXPECT_EQ(S.choose(2, "b"), 1u);
  EXPECT_EQ(S.choose(4, "c"), 0u); // past the prefix
  EXPECT_EQ(S.trace(), (std::vector<unsigned>{2, 1, 0}));
  EXPECT_EQ(S.widths(), (std::vector<unsigned>{3, 2, 4}));
}

TEST(Scheduler, TraceClampsStalePrefix) {
  TraceScheduler S({5});
  EXPECT_EQ(S.choose(3, "a"), 2u); // clamped to N-1
}
