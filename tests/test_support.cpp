//===-- tests/test_support.cpp - support library unit tests ---------------===//

#include "support/Expected.h"
#include "support/Format.h"
#include "support/Scheduler.h"

#include <gtest/gtest.h>

using namespace cerb;

TEST(Format, BasicSubstitution) {
  EXPECT_EQ(fmt("x={0} y={1}", 1, 2), "x=1 y=2");
  EXPECT_EQ(fmt("{0}{0}{0}", "ab"), "ababab");
  EXPECT_EQ(fmt("no placeholders"), "no placeholders");
}

TEST(Format, OutOfRangeIndexLeftVerbatim) {
  EXPECT_EQ(fmt("{1}", 5), "{1}");
  EXPECT_EQ(fmt("{x}", 5), "{x}");
  EXPECT_EQ(fmt("{", 5), "{");
}

TEST(Format, Int128Rendering) {
  EXPECT_EQ(toString(Int128(0)), "0");
  EXPECT_EQ(toString(Int128(-1)), "-1");
  EXPECT_EQ(toString(Int128(1234567890123456789LL)), "1234567890123456789");
  // INT128_MIN must not overflow during negation.
  Int128 Min = Int128(1) << 126;
  Min = -Min - Min; // == -2^127
  EXPECT_EQ(toString(Min),
            "-170141183460469231731687303715884105728");
  UInt128 Big = ~UInt128(0);
  EXPECT_EQ(toString(Big), "340282366920938463463374607431768211455");
}

TEST(Format, Join) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Expected, ValueAndError) {
  Expected<int> V(42);
  ASSERT_TRUE(static_cast<bool>(V));
  EXPECT_EQ(*V, 42);

  Expected<int> E(err("boom", SourceLoc(3, 4), "6.5p2"));
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.error().Message, "boom");
  EXPECT_EQ(E.error().str(), "3:4: boom [ISO C11 6.5p2]");
}

TEST(Scheduler, LeftmostAlwaysZero) {
  LeftmostScheduler S;
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(S.choose(5, "t"), 0u);
}

TEST(Scheduler, RandomIsDeterministicPerSeed) {
  RandomScheduler A(7), B(7), C(8);
  std::vector<unsigned> VA, VB, VC;
  for (int I = 0; I < 32; ++I) {
    VA.push_back(A.choose(10, "t"));
    VB.push_back(B.choose(10, "t"));
    VC.push_back(C.choose(10, "t"));
  }
  EXPECT_EQ(VA, VB);
  EXPECT_NE(VA, VC);
}

TEST(Scheduler, RandomCoversAlternatives) {
  RandomScheduler S(99);
  std::vector<bool> Seen(4, false);
  for (int I = 0; I < 200; ++I)
    Seen[S.choose(4, "t")] = true;
  for (bool B : Seen)
    EXPECT_TRUE(B);
}

TEST(Scheduler, TraceReplaysPrefixThenZero) {
  TraceScheduler S({2, 1});
  EXPECT_EQ(S.choose(3, "a"), 2u);
  EXPECT_EQ(S.choose(2, "b"), 1u);
  EXPECT_EQ(S.choose(4, "c"), 0u); // past the prefix
  EXPECT_EQ(S.trace(), (std::vector<unsigned>{2, 1, 0}));
  EXPECT_EQ(S.widths(), (std::vector<unsigned>{3, 2, 4}));
}

TEST(Scheduler, TraceClampsStalePrefix) {
  TraceScheduler S({5});
  EXPECT_EQ(S.choose(3, "a"), 2u); // clamped to N-1
}
