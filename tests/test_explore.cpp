//===-- tests/test_explore.cpp - parallel exhaustive explorer -------------===//
//
// The parallel frontier explorer's contracts (exec/Driver.h):
//  - thread-count determinism: the ExhaustiveResult of a completed
//    exploration is byte-identical for 1 vs 8 workers (sorted Distinct,
//    reservation-claimed counters);
//  - replay: any recorded decision vector re-executed through a
//    TraceScheduler reproduces its outcome and trace exactly;
//  - budgets: path-budget truncation and wall-clock deadlines stop the
//    exploration with thread-count-independent counters;
//  - substrate: ThreadPool task groups (helping wait, nested fan-out) and
//    the striped outcome-hash set.
//
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"
#include "support/StripedHashSet.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

using namespace cerb;
using namespace cerb::exec;

namespace {

/// Programs with several allowed executions (indeterminately sequenced
/// calls, Q2 provenance latitude) — the explorer's interesting inputs.
const char *NondetSources[] = {
    R"(
#include <stdio.h>
int g;
int s(int v) { g = v; return 0; }
int main(void) { s(1) + s(2); printf("%d\n", g); return 0; }
)",
    R"(
#include <stdio.h>
int g;
int s(int v) { g = g * 10 + v; return v; }
int main(void) { int r = s(1) + s(2) + s(3); printf("%d %d\n", g, r);
  return 0; }
)",
    R"(
#include <stdio.h>
int y = 2, x = 1;
int main(void) { printf("%d\n", &x + 1 == &y); return 0; }
)",
    R"(
#include <stdio.h>
int g;
int s(int v) { g = g * 10 + v; return 0; }
int main(void) { s(1) + s(2); s(3) + s(4); s(5) + s(6); printf("%d\n", g);
  return 0; }
)",
};

ExhaustiveResult explore(std::string_view Src, unsigned Jobs,
                         uint64_t MaxPaths = 4096,
                         mem::MemoryPolicy P = mem::MemoryPolicy::defacto()) {
  RunOptions Opts;
  Opts.Policy = P;
  Opts.MaxPaths = MaxPaths;
  Opts.ExploreJobs = Jobs;
  auto R = evaluateExhaustive(Src, Opts);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.error().str());
  return R ? *R : ExhaustiveResult{};
}

/// Serializes the determinism-relevant part of an ExhaustiveResult (i.e.
/// everything except the scheduling-dependent Stats).
std::string fingerprint(const ExhaustiveResult &R) {
  std::string S = "paths=" + std::to_string(R.PathsExplored) +
                  " truncated=" + std::to_string(R.Truncated) +
                  " timed_out=" + std::to_string(R.TimedOut) + "\n";
  for (const Outcome &O : R.Distinct)
    S += O.str() + "\n";
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// Thread-count determinism
//===----------------------------------------------------------------------===//

TEST(Explore, ThreadCountDeterminism) {
  for (const char *Src : NondetSources) {
    ExhaustiveResult R1 = explore(Src, 1);
    ASSERT_FALSE(R1.Truncated);
    for (unsigned Jobs : {2u, 8u}) {
      ExhaustiveResult RN = explore(Src, Jobs);
      EXPECT_EQ(fingerprint(R1), fingerprint(RN))
          << "jobs=" << Jobs << " diverged on:\n" << Src;
    }
  }
}

TEST(Explore, DistinctIsCanonicallySorted) {
  for (unsigned Jobs : {1u, 8u}) {
    ExhaustiveResult R = explore(NondetSources[1], Jobs);
    for (size_t I = 1; I < R.Distinct.size(); ++I)
      EXPECT_LT(R.Distinct[I - 1].str(), R.Distinct[I].str());
  }
}

TEST(Explore, ParallelFindsAllQ2Outcomes) {
  ExhaustiveResult R = explore(NondetSources[2], 8);
  EXPECT_EQ(R.PathsExplored, 2u);
  std::set<std::string> Outs;
  for (const Outcome &O : R.Distinct)
    if (O.Kind == OutcomeKind::Exit)
      Outs.insert(O.Stdout);
  EXPECT_EQ(Outs, (std::set<std::string>{"0\n", "1\n"}));
}

TEST(Explore, SharedPoolMatchesOwnedPool) {
  auto Prog = compile(NondetSources[3]);
  ASSERT_TRUE(static_cast<bool>(Prog));
  RunOptions Opts;
  ExhaustiveResult Serial = runExhaustive(*Prog, Opts);
  ThreadPool Pool(4);
  ExhaustiveResult Shared = runExhaustiveOn(*Prog, Opts, Pool);
  EXPECT_EQ(fingerprint(Serial), fingerprint(Shared));
  EXPECT_EQ(Shared.Stats.Workers, 4u);
}

TEST(Explore, StatsCountReplayedWork) {
  // 3 indeterminately sequenced pairs -> 8 leaves; every non-root subtree
  // claim replays its prefix, so replayed choices must be non-zero and
  // identical across thread counts for a completed exploration.
  ExhaustiveResult R1 = explore(NondetSources[3], 1);
  ExhaustiveResult R8 = explore(NondetSources[3], 8);
  EXPECT_EQ(R1.PathsExplored, 8u);
  EXPECT_GT(R1.Stats.ReplayedSteps, 0u);
  EXPECT_EQ(R1.Stats.ReplayedSteps, R8.Stats.ReplayedSteps);
  EXPECT_GT(R1.Stats.FrontierHighWater, 0u);
}

//===----------------------------------------------------------------------===//
// Replay: recorded decision vectors reproduce their outcomes
//===----------------------------------------------------------------------===//

TEST(Explore, RecordedDecisionVectorReplaysExactly) {
  for (const char *Src : NondetSources) {
    auto Prog = compile(Src);
    ASSERT_TRUE(static_cast<bool>(Prog));
    // Enumerate every leaf by explicit DFS, then replay each recorded
    // trace and demand the identical outcome, trace, and widths.
    std::vector<std::vector<unsigned>> Frontier{{}};
    unsigned Leaves = 0;
    while (!Frontier.empty() && Leaves < 64) {
      std::vector<unsigned> Prefix = std::move(Frontier.back());
      Frontier.pop_back();
      TraceScheduler Sched(Prefix);
      Evaluator Eval(*Prog, Sched, mem::MemoryPolicy::defacto());
      Outcome O = Eval.run();
      ++Leaves;

      TraceScheduler Re(Sched.trace());
      Evaluator ReEval(*Prog, Re, mem::MemoryPolicy::defacto());
      Outcome O2 = ReEval.run();
      EXPECT_EQ(O.str(), O2.str());
      EXPECT_EQ(Sched.trace(), Re.trace());
      EXPECT_EQ(Sched.widths(), Re.widths());
      EXPECT_EQ(Re.replayedChoices(), Re.trace().size());

      const auto &Trace = Sched.trace();
      const auto &Widths = Sched.widths();
      for (size_t I = Prefix.size(); I < Trace.size(); ++I)
        for (unsigned J = Trace[I] + 1; J < Widths[I]; ++J) {
          std::vector<unsigned> Sub(Trace.begin(), Trace.begin() + I);
          Sub.push_back(J);
          Frontier.push_back(std::move(Sub));
        }
    }
    EXPECT_TRUE(Frontier.empty()) << "enumeration did not terminate";
  }
}

//===----------------------------------------------------------------------===//
// Budgets: truncation and deadlines
//===----------------------------------------------------------------------===//

namespace {

/// 10 indeterminately sequenced pairs -> far more than 16 paths.
const char *Combinatorial = R"(
int g;
int s(int v) { g = v; return 0; }
int main(void) {
  int i;
  for (i = 0; i < 10; i++)
    s(i) + s(i + 1);
  return 0;
}
)";

} // namespace

TEST(Explore, BudgetTruncationIsThreadCountIndependent) {
  for (unsigned Jobs : {1u, 2u, 8u}) {
    ExhaustiveResult R = explore(Combinatorial, Jobs, /*MaxPaths=*/16);
    EXPECT_EQ(R.PathsExplored, 16u) << "jobs=" << Jobs;
    EXPECT_TRUE(R.Truncated) << "jobs=" << Jobs;
    EXPECT_FALSE(R.TimedOut) << "jobs=" << Jobs;
  }
}

TEST(Explore, ExactBudgetIsNotTruncation) {
  // NondetSources[3] has exactly 8 leaves; a budget of exactly 8 must not
  // report truncation (every reservation succeeds, none fails).
  for (unsigned Jobs : {1u, 8u}) {
    ExhaustiveResult R = explore(NondetSources[3], Jobs, /*MaxPaths=*/8);
    EXPECT_EQ(R.PathsExplored, 8u);
    EXPECT_FALSE(R.Truncated) << "jobs=" << Jobs;
  }
}

TEST(Explore, DeadlineStopsExploration) {
  auto Prog = compile("int main(void){ while (1) {} return 0; }");
  ASSERT_TRUE(static_cast<bool>(Prog));
  for (unsigned Jobs : {1u, 4u}) {
    RunOptions Opts;
    Opts.ExploreJobs = Jobs;
    Opts.Limits.Deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
    auto T0 = std::chrono::steady_clock::now();
    ExhaustiveResult R = runExhaustive(*Prog, Opts);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - T0)
                    .count();
    EXPECT_TRUE(R.TimedOut) << "jobs=" << Jobs;
    ASSERT_EQ(R.Distinct.size(), 1u);
    EXPECT_EQ(R.Distinct[0].Kind, OutcomeKind::Timeout);
    EXPECT_LT(Ms, 5000.0) << "deadline failed to stop exploration";
  }
}

TEST(Explore, DeadlineAbandonsRemainingFrontier) {
  // A combinatorial space with an already-expired deadline: the first path
  // times out and the rest of the frontier must be abandoned quickly.
  auto Prog = compile(Combinatorial);
  ASSERT_TRUE(static_cast<bool>(Prog));
  for (unsigned Jobs : {1u, 4u}) {
    RunOptions Opts;
    Opts.ExploreJobs = Jobs;
    Opts.Limits.Deadline = std::chrono::steady_clock::now();
    ExhaustiveResult R = runExhaustive(*Prog, Opts);
    EXPECT_TRUE(R.TimedOut) << "jobs=" << Jobs;
    EXPECT_LE(R.PathsExplored, 8u) << "jobs=" << Jobs;
  }
}

//===----------------------------------------------------------------------===//
// Substrate: ThreadPool task groups and the striped hash set
//===----------------------------------------------------------------------===//

TEST(ThreadPoolGroups, GroupsDrainIndependently) {
  ThreadPool Pool(2);
  ThreadPool::TaskGroup A, B;
  std::atomic<int> DoneA{0}, DoneB{0};
  for (int I = 0; I < 50; ++I) {
    Pool.submit(A, [&DoneA] { ++DoneA; });
    Pool.submit(B, [&DoneB] { ++DoneB; });
  }
  Pool.wait(A);
  EXPECT_EQ(DoneA.load(), 50);
  Pool.wait(B);
  EXPECT_EQ(DoneB.load(), 50);
  Pool.wait();
}

TEST(ThreadPoolGroups, NestedFanOutDoesNotDeadlock) {
  // More outer tasks than workers, each waiting on its own inner group:
  // the helping wait() must let every blocked outer task drain its group
  // itself (this deadlocks with a naive blocking wait).
  ThreadPool Pool(2);
  std::atomic<int> Inner{0};
  std::atomic<int> Outer{0};
  for (int I = 0; I < 8; ++I)
    Pool.submit([&Pool, &Inner, &Outer] {
      ThreadPool::TaskGroup G;
      for (int K = 0; K < 32; ++K)
        Pool.submit(G, [&Inner] { ++Inner; });
      Pool.wait(G);
      ++Outer;
    });
  Pool.wait();
  EXPECT_EQ(Outer.load(), 8);
  EXPECT_EQ(Inner.load(), 8 * 32);
}

TEST(ThreadPoolGroups, GroupTasksCanSpawnGroupTasks) {
  ThreadPool Pool(4);
  ThreadPool::TaskGroup G;
  std::atomic<int> Count{0};
  // Each task re-submits two children until depth 6: 2^7 - 1 tasks total.
  std::function<void(int)> Grow = [&](int Depth) {
    ++Count;
    if (Depth < 6)
      for (int K = 0; K < 2; ++K)
        Pool.submit(G, [&Grow, Depth] { Grow(Depth + 1); });
  };
  Pool.submit(G, [&Grow] { Grow(0); });
  Pool.wait(G);
  EXPECT_EQ(Count.load(), 127);
}

TEST(StripedHashSetTest, InsertDeduplicates) {
  StripedHashSet S;
  EXPECT_TRUE(S.insert(42));
  EXPECT_FALSE(S.insert(42));
  EXPECT_TRUE(S.contains(42));
  EXPECT_FALSE(S.contains(43));
  EXPECT_EQ(S.size(), 1u);
}

TEST(StripedHashSetTest, ConcurrentInsertersAgreeOnMembership) {
  StripedHashSet S;
  constexpr int N = 4, PerThread = 5000;
  std::vector<std::thread> Ts;
  std::atomic<uint64_t> FirstInserts{0};
  for (int T = 0; T < N; ++T)
    Ts.emplace_back([&S, &FirstInserts, T] {
      for (int I = 0; I < PerThread; ++I)
        // Overlapping key ranges across threads: every key is attempted
        // at least twice in total.
        if (S.insert(hashUint64(static_cast<uint64_t>((T % 2) * PerThread + I))))
          ++FirstInserts;
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(FirstInserts.load(), 2u * PerThread);
  EXPECT_EQ(S.size(), 2u * PerThread);
}
