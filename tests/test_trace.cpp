//===-- tests/test_trace.cpp - the src/trace observability layer ----------===//
//
// The trace layer's contracts: counters sum correctly under concurrent
// increments (striped relaxed atomics lose nothing); Registry deltas keep
// only nonzero entries and honor a prefix filter; the disabled path
// creates no per-thread buffers (the zero-cost guarantee); the Chrome
// trace-event serialization is well-formed JSON with correct span
// nesting, per-thread track attribution, and args; and tracing does not
// perturb oracle report bytes (counters are always on, events are gated,
// so --trace changes nothing the report serializes).
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "oracle/Oracle.h"
#include "oracle/Report.h"
#include "support/Json.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cerb;

namespace {

/// Arms tracing for one test body and guarantees it is disarmed on every
/// exit path, so a failing assertion cannot leak an enabled session into
/// the next test when the binary runs whole (outside ctest's
/// one-process-per-test harness).
struct Session {
  Session() { trace::start(); }
  ~Session() { trace::stop(); }
};

/// The events of one serialized trace document, flattened for assertions.
struct Doc {
  json::Value Root;
  std::vector<const json::Value *> Events;

  static Doc parse(const std::string &Text) {
    Doc D;
    std::string Err;
    auto V = json::parse(Text, &Err);
    EXPECT_TRUE(V.has_value()) << Err;
    if (V) {
      D.Root = std::move(*V);
      const json::Value *Evs = D.Root.get("traceEvents");
      EXPECT_NE(Evs, nullptr);
      if (Evs)
        for (const json::Value &E : Evs->Arr)
          D.Events.push_back(&E);
    }
    return D;
  }

  const json::Value *findEvent(std::string_view Name) const {
    for (const json::Value *E : Events)
      if (const json::Value *N = E->get("name"); N && N->asString() == Name)
        return E;
    return nullptr;
  }

  /// tid of the thread_name metadata record carrying \p Track.
  uint64_t tidOfTrack(std::string_view Track) const {
    for (const json::Value *E : Events) {
      const json::Value *Ph = E->get("ph");
      if (!Ph || Ph->asString() != "M")
        continue;
      const json::Value *Args = E->get("args");
      const json::Value *N = Args ? Args->get("name") : nullptr;
      if (N && N->asString() == Track)
        return E->get("tid")->asU64();
    }
    return 0;
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Counters and the Registry
//===----------------------------------------------------------------------===//

TEST(TraceCounters, ConcurrentIncrementsAllLand) {
  static trace::Counter Cnt("test.concurrent");
  uint64_t Before = Cnt.value();

  ThreadPool Pool(8);
  for (int I = 0; I < 1000; ++I)
    Pool.submit([] { Cnt.add(3); });
  Pool.wait();

  EXPECT_EQ(Cnt.value(), Before + 3000u);

  // The registry snapshot sees the same total under the same name.
  trace::Registry::Snapshot S = trace::Registry::instance().snapshot();
  ASSERT_TRUE(S.count("test.concurrent"));
  EXPECT_EQ(S["test.concurrent"], Cnt.value());
}

TEST(TraceRegistry, DeltaKeepsNonzeroEntriesOnly) {
  static trace::Counter Moved("test.delta.moved");
  static trace::Counter Still("test.delta.still");
  (void)Still; // registered but never incremented between the snapshots

  trace::Registry::Snapshot Before = trace::Registry::instance().snapshot();
  Moved.add(7);
  trace::Registry::Snapshot After = trace::Registry::instance().snapshot();

  trace::Registry::Snapshot D = trace::Registry::delta(Before, After);
  EXPECT_EQ(D["test.delta.moved"], 7u);
  EXPECT_FALSE(D.count("test.delta.still"));
}

TEST(TraceRegistry, DeltaPrefixFilterSelectsNamespace) {
  static trace::Counter In("testpfx.inside");
  static trace::Counter Out("test.outside");

  trace::Registry::Snapshot Before = trace::Registry::instance().snapshot();
  In.add(2);
  Out.add(5);
  trace::Registry::Snapshot After = trace::Registry::instance().snapshot();

  trace::Registry::Snapshot D =
      trace::Registry::delta(Before, After, "testpfx.");
  EXPECT_EQ(D.size(), 1u);
  EXPECT_EQ(D["testpfx.inside"], 2u);
}

//===----------------------------------------------------------------------===//
// The disabled path
//===----------------------------------------------------------------------===//

TEST(TraceDisabled, NoBufferCreatedAndNoEventRetained) {
  trace::stop();
  ASSERT_FALSE(trace::enabled());
  size_t BuffersBefore = trace::internal::threadBufferCount();

  // A fresh thread records spans and instants with tracing disabled: it
  // must never materialize a per-thread buffer (the zero-cost contract —
  // an allocation here would show up as buffer growth).
  std::thread T([] {
    trace::setCurrentThreadName("should-not-appear");
    for (int I = 0; I < 100; ++I) {
      trace::Span S("disabled-span", "test");
      EXPECT_FALSE(S.active());
      S.arg("ignored", 1);
      trace::instant("disabled-instant", "test");
    }
  });
  T.join();

  EXPECT_EQ(trace::internal::threadBufferCount(), BuffersBefore);

  // And a session that never saw those events serializes none of them.
  {
    Session Armed;
  }
  Doc D = Doc::parse(trace::chromeTraceJson());
  EXPECT_EQ(D.findEvent("disabled-span"), nullptr);
  EXPECT_EQ(D.findEvent("disabled-instant"), nullptr);
}

//===----------------------------------------------------------------------===//
// Chrome trace-event serialization
//===----------------------------------------------------------------------===//

TEST(TraceChrome, SpanNestingThreadTracksAndArgs) {
  std::string Text;
  {
    Session Armed;
    trace::setCurrentThreadName("test-main");
    {
      trace::Span Outer("outer", "test");
      Outer.arg("n", 42);
      {
        trace::Span Inner("inner", "test");
        Inner.detail("the detail");
      }
      trace::instant("tick", "test", "now");
    }
    std::thread Worker([] {
      trace::setCurrentThreadName("test-worker");
      trace::Span S("worker-span", "test");
    });
    Worker.join();
    trace::stop();
    Text = trace::chromeTraceJson();
  }

  Doc D = Doc::parse(Text);

  // Track attribution: both threads have named metadata records, and each
  // event sits on its own thread's tid.
  uint64_t MainTid = D.tidOfTrack("test-main");
  uint64_t WorkerTid = D.tidOfTrack("test-worker");
  ASSERT_NE(MainTid, 0u);
  ASSERT_NE(WorkerTid, 0u);
  EXPECT_NE(MainTid, WorkerTid);

  const json::Value *Outer = D.findEvent("outer");
  const json::Value *Inner = D.findEvent("inner");
  const json::Value *Tick = D.findEvent("tick");
  const json::Value *Work = D.findEvent("worker-span");
  ASSERT_NE(Outer, nullptr);
  ASSERT_NE(Inner, nullptr);
  ASSERT_NE(Tick, nullptr);
  ASSERT_NE(Work, nullptr);
  EXPECT_EQ(Outer->get("tid")->asU64(), MainTid);
  EXPECT_EQ(Inner->get("tid")->asU64(), MainTid);
  EXPECT_EQ(Tick->get("tid")->asU64(), MainTid);
  EXPECT_EQ(Work->get("tid")->asU64(), WorkerTid);

  // Shape: complete events carry ph X/dur, instants ph i with scope "t".
  EXPECT_EQ(Outer->get("ph")->asString(), "X");
  EXPECT_EQ(Outer->get("cat")->asString(), "test");
  EXPECT_EQ(Tick->get("ph")->asString(), "i");
  EXPECT_EQ(Tick->get("s")->asString(), "t");
  EXPECT_EQ(Tick->get("args")->get("detail")->asString(), "now");

  // Args: numeric span arg and detail string both serialize.
  EXPECT_EQ(Outer->get("args")->get("n")->asU64(), 42u);
  EXPECT_EQ(Inner->get("args")->get("detail")->asString(), "the detail");

  // Nesting: the inner interval lies within the outer one, and the
  // instant falls inside the outer span too.
  uint64_t OutBeg = Outer->get("ts")->asU64();
  uint64_t OutEnd = OutBeg + Outer->get("dur")->asU64();
  uint64_t InBeg = Inner->get("ts")->asU64();
  uint64_t InEnd = InBeg + Inner->get("dur")->asU64();
  EXPECT_GE(InBeg, OutBeg);
  EXPECT_LE(InEnd, OutEnd);
  EXPECT_GE(Tick->get("ts")->asU64(), OutBeg);
  EXPECT_LE(Tick->get("ts")->asU64(), OutEnd);
}

TEST(TraceChrome, StartClearsThePreviousSession) {
  {
    Session Armed;
    trace::instant("stale", "test");
  }
  {
    Session Armed;
    trace::instant("fresh", "test");
    trace::stop();
    Doc D = Doc::parse(trace::chromeTraceJson());
    EXPECT_EQ(D.findEvent("stale"), nullptr);
    EXPECT_NE(D.findEvent("fresh"), nullptr);
  }
}

TEST(TraceChrome, DetailStringsAreEscaped) {
  std::string Text;
  {
    Session Armed;
    trace::instant("escaped", "test", "a \"b\"\n\tc\\d");
    trace::stop();
    Text = trace::chromeTraceJson();
  }
  Doc D = Doc::parse(Text); // parse failure would flag broken escaping
  const json::Value *E = D.findEvent("escaped");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->get("args")->get("detail")->asString(), "a \"b\"\n\tc\\d");
}

//===----------------------------------------------------------------------===//
// Tracing does not perturb reports
//===----------------------------------------------------------------------===//

TEST(TraceOracle, ReportBytesIdenticalWithTracingOnOrOff) {
  auto makeJobs = [] {
    std::vector<oracle::Job> Jobs;
    for (const mem::MemoryPolicy &P : mem::MemoryPolicy::allPresets()) {
      oracle::Job J;
      J.Name = "probe";
      J.Source = "int main(void){ int a[2] = {1, 2}; return a[0] + a[1]; }";
      J.Policy = P;
      Jobs.push_back(J);
    }
    return Jobs;
  };
  oracle::OracleConfig Cfg;
  Cfg.Threads = 4;
  oracle::ReportOptions RO;
  RO.IncludeTimings = false;

  trace::stop();
  oracle::BatchResult Off = oracle::Oracle(Cfg).run(makeJobs());
  std::string OffJson = oracle::toJson(Off, RO);

  std::string OnJson;
  {
    Session Armed;
    oracle::BatchResult On = oracle::Oracle(Cfg).run(makeJobs());
    OnJson = oracle::toJson(On, RO);
  }

  // Counters are always on and events are gated, so arming tracing must
  // not change a single report byte (the --trace acceptance contract).
  EXPECT_EQ(OffJson, OnJson);

  // The embedded counter delta reflects the batch that produced it.
  EXPECT_GT(Off.Stats.Counters["oracle.jobs"], 0u);
  EXPECT_GT(Off.Stats.Counters["exec.eval_runs"], 0u);
  std::string Err;
  auto Parsed = json::parse(OffJson, &Err);
  ASSERT_TRUE(Parsed.has_value()) << Err;
  const json::Value *Stats = Parsed->get("stats");
  ASSERT_NE(Stats, nullptr);
  const json::Value *Counters = Stats->get("counters");
  ASSERT_NE(Counters, nullptr);
  const json::Value *Jobs = Counters->get("oracle.jobs");
  ASSERT_NE(Jobs, nullptr);
  EXPECT_EQ(Jobs->asU64(), Off.Stats.Counters["oracle.jobs"]);
}
