//===-- tests/test_chaos.cpp - serve-stack chaos soak ---------------------===//
//
// The robustness capstone: an in-process daemon soaked by concurrent
// clients while a seeded fault schedule tears at every I/O seam — socket
// reads/writes fail and shorten, accepts drop, cache publishes tear and
// die mid-rename, disk reads vanish. The properties under test:
//
//   1. No hangs: the whole soak finishes under a global watchdog deadline.
//      If it does not, the watchdog writes the seed + canonical fault
//      schedule to CERB_CHAOS_ARTIFACT (if set) and aborts the process, so
//      CI uploads an exact repro.
//   2. No descriptor leaks: /proc/self/fd is byte-for-byte the same size
//      after the soak (every torn connection's fd was released).
//   3. No wrong answers: every reply that *does* complete is
//      byte-identical to the fault-free golden run. Faults may cost
//      requests, never corrupt them.
//
// The schedule is a pure function of CERB_CHAOS_SEED (default 1), so any
// failure replays exactly, at any thread count.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Daemon.h"
#include "serve/Protocol.h"
#include "support/FaultInjector.h"
#include "support/Process.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdlib>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

using namespace cerb;
using namespace cerb::serve;

namespace fs = std::filesystem;

namespace {

constexpr unsigned NumClients = 8;
constexpr unsigned CallsPerClient = 64; // 512 requests total
constexpr unsigned NumSources = 10;

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  return (V && *V) ? std::strtoull(V, nullptr, 0) : Default;
}

size_t openFdCount() {
  size_t N = 0;
  for (const auto &E : fs::directory_iterator("/proc/self/fd"))
    (void)E, ++N;
  return N; // includes the iterator's own fd — constant, so deltas cancel
}

std::string chaosSource(unsigned I) {
  // Ten distinct trivial programs: distinct cache keys, instant evals.
  return "int main(void) { return " + std::to_string(I % 7) + " + " +
         std::to_string(I % 3) + "; }\n";
}

EvalRequest chaosRequest(unsigned SrcIdx) {
  EvalRequest Q;
  Q.Id = "chaos-" + std::to_string(SrcIdx);
  Q.Name = "chaos";
  Q.Source = chaosSource(SrcIdx);
  Q.Policies = {mem::MemoryPolicy::defacto()};
  Q.Limits.DeadlineMs = 5000;
  return Q;
}

/// The fault schedule for the soak: every seam, low-probability persistent
/// failures so most requests limp through after a retry or two.
std::vector<fault::FaultSpec> chaosSchedule() {
  auto Mk = [](const char *Site, double P, int Err) {
    fault::FaultSpec S;
    S.Site = Site;
    S.Probability = P;
    S.Err = Err;
    return S;
  };
  return {
      Mk("socket.read", 0.02, ECONNRESET),
      Mk("socket.read.short", 0.20, 0),
      Mk("socket.write", 0.02, EPIPE),
      Mk("socket.write.short", 0.20, 0),
      Mk("socket.accept", 0.05, ECONNABORTED),
      Mk("cache.disk_read", 0.05, EIO),
      Mk("cache.disk_write", 0.10, ENOSPC),
      Mk("cache.torn", 0.05, EIO),
      Mk("cache.rename", 0.10, EIO),
  };
}

/// On a hang, dump the exact repro (seed + canonical schedule) where CI
/// can pick it up, then kill the process hard enough that ctest reports a
/// failure instead of waiting out its own timeout.
struct Watchdog {
  std::mutex Mu;
  std::condition_variable Cv;
  bool Done = false;
  std::thread T;

  Watchdog(uint64_t DeadlineMs, uint64_t Seed) {
    T = std::thread([this, DeadlineMs, Seed] {
      std::unique_lock<std::mutex> L(Mu);
      if (Cv.wait_for(L, std::chrono::milliseconds(DeadlineMs),
                      [this] { return Done; }))
        return;
      const char *Artifact = std::getenv("CERB_CHAOS_ARTIFACT");
      std::string Desc = fault::Injector::instance().describe();
      if (Desc.empty()) { // soak may hang while disarmed (golden phase)
        fault::Injector::instance().arm(Seed, chaosSchedule());
        Desc = fault::Injector::instance().describe();
        fault::Injector::instance().disarm();
      }
      if (Artifact && *Artifact) {
        std::ofstream Out(Artifact, std::ios::trunc);
        Out << "CERB_CHAOS_SEED=" << Seed << "\n"
            << "CERB_FAULTS=" << Desc << "\n";
      }
      std::fprintf(stderr,
                   "chaos watchdog: soak exceeded %llu ms; repro with "
                   "CERB_CHAOS_SEED=%llu (schedule: %s)\n",
                   static_cast<unsigned long long>(DeadlineMs),
                   static_cast<unsigned long long>(Seed), Desc.c_str());
      std::fflush(stderr);
      std::_Exit(86); // no-hang guarantee violated: fail loud, fail now
    });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Done = true;
    }
    Cv.notify_all();
    T.join();
  }
};

struct TempDir {
  fs::path Path;
  TempDir() {
    std::string Tmpl =
        (fs::temp_directory_path() / "cerb-chaos-XXXXXX").string();
    char *P = ::mkdtemp(Tmpl.data());
    if (!P)
      std::abort();
    Path = P;
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str(const char *Leaf) const { return (Path / Leaf).string(); }
};

struct SoakResult {
  uint64_t Ok = 0;
  uint64_t Failed = 0;
  uint64_t Mismatched = 0; ///< completed but with non-golden report bytes
};

/// Runs the full client fleet against \p SocketPath. When \p Golden is
/// non-null, every ok reply's report is compared byte-for-byte against it.
SoakResult runFleet(const std::string &SocketPath, uint64_t Seed,
                    const std::map<unsigned, std::string> *Golden,
                    std::map<unsigned, std::string> *CollectInto) {
  SoakResult R;
  std::mutex Mu; // guards R and CollectInto
  std::vector<std::thread> Fleet;
  for (unsigned Tid = 0; Tid < NumClients; ++Tid) {
    Fleet.emplace_back([&, Tid] {
      RetryPolicy RP;
      RP.MaxAttempts = 6;
      RP.BaseDelayMs = 2;
      RP.MaxDelayMs = 40;
      RP.TotalDeadlineMs = 10000;
      RP.CallTimeoutMs = 5000;
      RP.Seed = Seed ^ (Tid * 0x9e3779b97f4a7c15ull);
      auto C = Client::connect(SocketPath, -1, RP);
      for (unsigned I = 0; I < CallsPerClient; ++I) {
        unsigned SrcIdx = (Tid * CallsPerClient + I) % NumSources;
        if (!C) { // even the initial connect may be fault-injected
          C = Client::connect(SocketPath, -1, RP);
          if (!C) {
            std::lock_guard<std::mutex> L(Mu);
            ++R.Failed;
            continue;
          }
        }
        auto Resp =
            C->callRetryParsed(serializeEvalRequest(chaosRequest(SrcIdx)));
        std::lock_guard<std::mutex> L(Mu);
        if (!Resp || Resp->Status != "ok") {
          ++R.Failed;
          continue;
        }
        ++R.Ok;
        if (Golden) {
          auto It = Golden->find(SrcIdx);
          if (It == Golden->end() || It->second != Resp->Report)
            ++R.Mismatched;
        }
        if (CollectInto && !CollectInto->count(SrcIdx))
          (*CollectInto)[SrcIdx] = Resp->Report;
      }
    });
  }
  for (std::thread &T : Fleet)
    T.join();
  return R;
}

/// One batch-round request: same content as chaosRequest (so its report
/// bytes are comparable against the same golden), batch-unique id.
EvalRequest batchChaosRequest(unsigned SrcIdx, std::string Id) {
  EvalRequest Q = chaosRequest(SrcIdx);
  Q.Id = std::move(Id);
  return Q;
}

struct BatchSoakResult {
  uint64_t OkBatches = 0;
  uint64_t FailedBatches = 0;
  uint64_t Mismatched = 0; ///< completed reply with non-golden report bytes
  uint64_t IdErrors = 0;   ///< reply slot carrying the wrong request id
};

constexpr unsigned BatchRounds = 8;   ///< callBatch rounds per client
constexpr unsigned BatchSize = 8;     ///< requests per batch

/// The batch analogue of runFleet: NumClients clients, each issuing
/// BatchRounds pipelined 8-request batches. Pipeline depth rotates per
/// round so chunked and single-frame batches both meet the faults.
BatchSoakResult runBatchFleet(const std::string &SocketPath, uint64_t Seed,
                              const std::map<unsigned, std::string> *Golden,
                              std::map<unsigned, std::string> *CollectInto) {
  BatchSoakResult R;
  std::mutex Mu; // guards R and CollectInto
  std::vector<std::thread> Fleet;
  for (unsigned Tid = 0; Tid < NumClients; ++Tid) {
    Fleet.emplace_back([&, Tid] {
      RetryPolicy RP;
      RP.MaxAttempts = 6;
      RP.BaseDelayMs = 2;
      RP.MaxDelayMs = 40;
      RP.TotalDeadlineMs = 10000;
      RP.CallTimeoutMs = 5000;
      RP.Seed = Seed ^ (Tid * 0x9e3779b97f4a7c15ull);
      auto C = Client::connect(SocketPath, -1, RP);
      for (unsigned Round = 0; Round < BatchRounds; ++Round) {
        if (!C) { // even the initial connect may be fault-injected
          C = Client::connect(SocketPath, -1, RP);
          if (!C) {
            std::lock_guard<std::mutex> L(Mu);
            ++R.FailedBatches;
            continue;
          }
        }
        std::vector<EvalRequest> Reqs;
        std::vector<unsigned> SrcIdx;
        for (unsigned K = 0; K < BatchSize; ++K) {
          unsigned S = (Tid * BatchRounds * BatchSize + Round * BatchSize +
                        K) % NumSources;
          SrcIdx.push_back(S);
          Reqs.push_back(batchChaosRequest(
              S, "c" + std::to_string(Tid) + "-r" + std::to_string(Round) +
                     "-q" + std::to_string(K)));
        }
        BatchOptions BO;
        const unsigned Depths[] = {0, 1, 3, BatchSize};
        BO.PipelineDepth = Depths[Round % 4];
        auto Resp = C->callBatch(Reqs, BO);
        std::lock_guard<std::mutex> L(Mu);
        if (!Resp) {
          ++R.FailedBatches;
          // callBatch poisons its socket on a failed last attempt; make
          // the next round dial fresh.
          C = Client::connect(SocketPath, -1, RP);
          continue;
        }
        ++R.OkBatches;
        // A successful batch is complete by contract: every slot answered
        // exactly once, in request order, after any number of retries.
        for (unsigned K = 0; K < BatchSize; ++K) {
          if (Resp->Responses[K].Id != Reqs[K].Id ||
              Resp->Responses[K].Status != "ok") {
            ++R.IdErrors;
            continue;
          }
          if (Golden) {
            auto It = Golden->find(SrcIdx[K]);
            if (It == Golden->end() ||
                It->second != Resp->Responses[K].Report)
              ++R.Mismatched;
          }
          if (CollectInto && !CollectInto->count(SrcIdx[K]))
            (*CollectInto)[SrcIdx[K]] = Resp->Responses[K].Report;
        }
      }
    });
  }
  for (std::thread &T : Fleet)
    T.join();
  return R;
}

} // namespace

TEST(ServeChaos, SoakUnderSeededFaultSchedule) {
  const uint64_t Seed = envU64("CERB_CHAOS_SEED", 1);
  const uint64_t DeadlineMs = envU64("CERB_CHAOS_DEADLINE_MS", 75000);
  Watchdog Dog(DeadlineMs, Seed);

  const size_t FdsBefore = openFdCount();

  // Phase 1 — golden run, no faults: collect the canonical report bytes
  // for each distinct source. Memory-only cache so phase 2's disk faults
  // start from a cold store.
  std::map<unsigned, std::string> Golden;
  {
    TempDir T;
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("golden.sock");
    Cfg.Threads = 4;
    Cfg.MaxQueue = 64;
    Cfg.Cache.Dir.clear();
    Daemon D(std::move(Cfg));
    ASSERT_TRUE(static_cast<bool>(D.start()));
    SoakResult R = runFleet(T.str("golden.sock"), Seed, nullptr, &Golden);
    D.requestDrain();
    ASSERT_EQ(D.waitUntilDrained(), 0);
    ASSERT_EQ(R.Failed, 0u) << "fault-free phase must not drop requests";
    ASSERT_EQ(Golden.size(), NumSources);
  }

  // Phase 2 — same fleet, same request stream, faults armed everywhere.
  SoakResult R;
  DaemonSnapshot Snap;
  {
    TempDir T;
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("chaos.sock");
    Cfg.Threads = 4;
    Cfg.MaxQueue = 64;
    Cfg.MaxConns = 32;
    Cfg.IdleTimeoutMs = 2000;
    Cfg.ReadTimeoutMs = 2000;
    Cfg.Cache.Dir = T.str("cache");
    Cfg.Cache.MaxMemoryEntries = 4; // force disk-tier traffic under faults
    Daemon D(std::move(Cfg));
    ASSERT_TRUE(static_cast<bool>(D.start()));
    {
      fault::ScopedFaults Faults(Seed, chaosSchedule());
      R = runFleet(T.str("chaos.sock"), Seed, &Golden, nullptr);
      // Drain while still armed: shutdown must also survive the faults.
      D.requestDrain();
      ASSERT_EQ(D.waitUntilDrained(), 0)
          << "drain timed out with faults armed";
    }
    Snap = D.snapshot();
  }

  const uint64_t Total = uint64_t(NumClients) * CallsPerClient;
  EXPECT_EQ(R.Ok + R.Failed, Total);
  EXPECT_EQ(R.Mismatched, 0u)
      << "faults may cost requests, never corrupt them";
  // With 6 retry attempts against ~2% per-op fault rates, the vast
  // majority of calls must complete; a collapse here means retry or
  // recovery is broken, not bad luck (the schedule is deterministic).
  EXPECT_GE(R.Ok * 10, Total * 9)
      << "ok=" << R.Ok << " failed=" << R.Failed << " seed=" << Seed;
  EXPECT_EQ(Snap.LiveConns, 0u);

  // Descriptor accounting: the daemon, every client, and every torn
  // connection are gone — the fd table is exactly as we found it.
  const size_t FdsAfter = openFdCount();
  EXPECT_EQ(FdsBefore, FdsAfter)
      << "fd leak under faults (before=" << FdsBefore
      << " after=" << FdsAfter << " seed=" << Seed << ")";
}

TEST(ServeChaos, BatchRoundUnderSeededFaultSchedule) {
  // The batch op under the same 9-site schedule as the request soak: 8
  // clients, each firing 8-request pipelined batches. The extra surface
  // under test is the callBatch retry contract — a mid-stream tear must
  // resend only the missing ids, so a batch that completes has every id
  // answered exactly once (no duplicates, no drops) with fault-free bytes.
  const uint64_t Seed = envU64("CERB_CHAOS_SEED", 1);
  const uint64_t DeadlineMs = envU64("CERB_CHAOS_DEADLINE_MS", 75000);
  Watchdog Dog(DeadlineMs, Seed);

  const size_t FdsBefore = openFdCount();

  // Phase 1 — golden batches, no faults.
  std::map<unsigned, std::string> Golden;
  {
    TempDir T;
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("golden.sock");
    Cfg.Threads = 4;
    Cfg.MaxQueue = 64;
    Cfg.Cache.Dir.clear();
    Daemon D(std::move(Cfg));
    ASSERT_TRUE(static_cast<bool>(D.start()));
    BatchSoakResult G = runBatchFleet(T.str("golden.sock"), Seed, nullptr,
                                      &Golden);
    D.requestDrain();
    ASSERT_EQ(D.waitUntilDrained(), 0);
    ASSERT_EQ(G.FailedBatches, 0u) << "fault-free phase must not drop";
    ASSERT_EQ(G.IdErrors, 0u);
    ASSERT_EQ(Golden.size(), NumSources);
  }

  // Phase 2 — same batch stream, faults armed everywhere.
  BatchSoakResult R;
  DaemonSnapshot Snap;
  {
    TempDir T;
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("chaos.sock");
    Cfg.Threads = 4;
    Cfg.MaxQueue = 64;
    Cfg.MaxConns = 32;
    Cfg.IdleTimeoutMs = 2000;
    Cfg.ReadTimeoutMs = 2000;
    Cfg.Cache.Dir = T.str("cache");
    Cfg.Cache.MaxMemoryEntries = 4; // force disk-tier traffic under faults
    Daemon D(std::move(Cfg));
    ASSERT_TRUE(static_cast<bool>(D.start()));
    {
      fault::ScopedFaults Faults(Seed, chaosSchedule());
      R = runBatchFleet(T.str("chaos.sock"), Seed, &Golden, nullptr);
      D.requestDrain();
      ASSERT_EQ(D.waitUntilDrained(), 0)
          << "drain timed out with faults armed";
    }
    Snap = D.snapshot();
  }

  const uint64_t Total = uint64_t(NumClients) * BatchRounds;
  EXPECT_EQ(R.OkBatches + R.FailedBatches, Total);
  EXPECT_EQ(R.IdErrors, 0u)
      << "a completed batch must answer every id exactly once";
  EXPECT_EQ(R.Mismatched, 0u)
      << "faults may cost batches, never corrupt completed replies";
  // Batches retry as a unit (only missing ids resent), so completion
  // stays high under the same fault rates as the request soak.
  EXPECT_GE(R.OkBatches * 10, Total * 9)
      << "ok=" << R.OkBatches << " failed=" << R.FailedBatches
      << " seed=" << Seed;
  EXPECT_EQ(Snap.LiveConns, 0u);

  const size_t FdsAfter = openFdCount();
  EXPECT_EQ(FdsBefore, FdsAfter)
      << "fd leak under faults (before=" << FdsBefore
      << " after=" << FdsAfter << " seed=" << Seed << ")";
}

TEST(ServeChaos, WorkerPoolSoakUnderCrashFaults) {
  // The cross-process analogue of the soak: a real `cerb serve --workers 4`
  // pool (spawned binary — kill -9-grade crashes need process isolation)
  // with the worker.crash fault firing inside evalBody at a bounded rate.
  // Workers die mid-request; the supervisor restarts them; retrying
  // clients must lose nothing and every completed reply must be
  // byte-identical to a fault-free golden run. --restart-limit is set far
  // above the crash budget: this round soaks recovery, not the breaker
  // (test_workers.cpp pins the breaker semantics).
  const uint64_t Seed = envU64("CERB_CHAOS_SEED", 1);
  const uint64_t DeadlineMs = envU64("CERB_CHAOS_DEADLINE_MS", 75000) * 2;
  Watchdog Dog(DeadlineMs, Seed);

  constexpr unsigned PoolClients = 6;
  constexpr unsigned PoolCalls = 16; // per client

  TempDir T;
  // Phase 1 — golden run, no faults, in-process daemon: canonical bytes.
  std::map<unsigned, std::string> Golden;
  {
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("golden.sock");
    Cfg.Threads = 2;
    Cfg.MaxQueue = 64;
    Cfg.Cache.Dir.clear();
    Daemon D(std::move(Cfg));
    ASSERT_TRUE(static_cast<bool>(D.start()));
    SoakResult G = runFleet(T.str("golden.sock"), Seed, nullptr, &Golden);
    D.requestDrain();
    ASSERT_EQ(D.waitUntilDrained(), 0);
    ASSERT_EQ(G.Failed, 0u);
    ASSERT_EQ(Golden.size(), NumSources);
  }

  // Phase 2 — the pool, workers crashing under a seeded schedule. The
  // crash probability is low enough that four workers with fast restarts
  // absorb it, high enough that several restarts happen per soak.
  const std::string Sock = T.str("pool.sock");
  std::string FaultSpec =
      "seed=" + std::to_string(Seed) + ";worker.crash,p=0.05";
  pid_t Pool = ::fork();
  ASSERT_GE(Pool, 0);
  if (Pool == 0) {
    ::setenv("CERB_FAULTS", FaultSpec.c_str(), 1);
    std::string Cache = T.str("cache");
    ::execl(CERB_BIN, CERB_BIN, "serve", "--socket", Sock.c_str(), "--jobs",
            "1", "--workers", "4", "--cache-dir", Cache.c_str(),
            "--restart-base-ms", "5", "--restart-limit", "64",
            (char *)nullptr);
    std::_Exit(127);
  }

  // Readiness: ping until the pool answers (pings do not evaluate, so
  // they never crash a worker).
  bool Ready = false;
  for (int I = 0; I < 1500 && !Ready; ++I) {
    RetryPolicy RP;
    RP.MaxAttempts = 1;
    RP.CallTimeoutMs = 2000;
    auto C = Client::connect(Sock, -1, RP);
    if (C) {
      auto R = C->callParsed(serializeSimpleRequest(Op::Ping, "ready"));
      Ready = R && R->Status == "ok";
    }
    if (!Ready)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!Ready) {
    ::kill(Pool, SIGKILL);
    int St = 0;
    ::waitpid(Pool, &St, 0);
    FAIL() << "worker pool never became ready";
  }

  // The fleet: generous retries — a crash costs an attempt, never a call.
  SoakResult R;
  {
    std::mutex Mu;
    std::vector<std::thread> Fleet;
    for (unsigned Tid = 0; Tid < PoolClients; ++Tid) {
      Fleet.emplace_back([&, Tid] {
        RetryPolicy RP;
        RP.MaxAttempts = 10;
        RP.BaseDelayMs = 2;
        RP.MaxDelayMs = 50;
        RP.TotalDeadlineMs = 30000;
        RP.CallTimeoutMs = 5000;
        RP.Seed = Seed ^ (Tid * 0x9e3779b97f4a7c15ull);
        auto C = Client::connect(Sock, -1, RP);
        for (unsigned I = 0; I < PoolCalls; ++I) {
          unsigned SrcIdx = (Tid * PoolCalls + I) % NumSources;
          if (!C) {
            C = Client::connect(Sock, -1, RP);
            if (!C) {
              std::lock_guard<std::mutex> L(Mu);
              ++R.Failed;
              continue;
            }
          }
          // NoCache: every call must traverse evalBody (the crash site);
          // cached replies would dodge the faults entirely.
          EvalRequest Q = chaosRequest(SrcIdx);
          Q.NoCache = true;
          auto Resp = C->callRetryParsed(serializeEvalRequest(Q));
          std::lock_guard<std::mutex> L(Mu);
          if (!Resp || Resp->Status != "ok") {
            ++R.Failed;
            continue;
          }
          ++R.Ok;
          auto It = Golden.find(SrcIdx);
          if (It == Golden.end() || It->second != Resp->Report)
            ++R.Mismatched;
        }
      });
    }
    for (std::thread &Th : Fleet)
      Th.join();
  }

  EXPECT_EQ(R.Ok + R.Failed, uint64_t(PoolClients) * PoolCalls);
  EXPECT_EQ(R.Failed, 0u)
      << "worker crashes must cost retries, not requests (seed=" << Seed
      << ")";
  EXPECT_EQ(R.Mismatched, 0u)
      << "reply bytes drifted across worker restarts (seed=" << Seed << ")";

  // Clean rolling drain under the same fault schedule.
  ASSERT_EQ(::kill(Pool, SIGTERM), 0);
  int St = -1;
  for (int I = 0; I < 1500; ++I) {
    int Got = 0;
    pid_t W = ::waitpid(Pool, &Got, WNOHANG);
    if (W == Pool) {
      St = Got;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (St == -1) {
    ::kill(Pool, SIGKILL);
    int Got = 0;
    ::waitpid(Pool, &Got, 0);
    FAIL() << "pool did not drain on SIGTERM";
  }
  EXPECT_TRUE(WIFEXITED(St) && WEXITSTATUS(St) == 0)
      << "pool drain exited " << proc::describeStatus(St) << " (seed=" << Seed
      << ")";
}

TEST(ServeChaos, SoakIsDeterministicPerSeedSite) {
  // The schedule itself must be reproducible: same seed, same site, same
  // hit index => same decision, independent of thread interleaving. (The
  // soak above relies on this for replayability; verify it directly.)
  auto Schedule = chaosSchedule();
  std::vector<int> First, Second;
  for (int Round = 0; Round < 2; ++Round) {
    fault::ScopedFaults F(42, Schedule);
    std::vector<int> &Out = Round ? Second : First;
    for (int I = 0; I < 2000; ++I)
      Out.push_back(fault::shouldFail("socket.read") ? 1 : 0);
  }
  EXPECT_EQ(First, Second);
}
