//===-- tests/test_lowering.cpp - Core lowering pass tests ----------------===//
//
// Units for the core::Lowering pass (slot resolution, constant folding,
// constant interning, ValueOnly marking, idempotence) plus the
// differential sweep: every de facto suite test and every corpus
// reproducer is compiled twice — FrontendOptions::CoreLower on and off,
// the same toggle CERB_NO_LOWERING=1 flips — and the exhaustive outcome
// sets must be identical. Outcome::str() carries no step counts or
// lower.* counters (those only surface in trace spans), so the
// comparison needs no normalization beyond sorting the distinct set.
//
// Label: `lowering` (also tier1); scripts/ci.sh re-runs the label so a
// registration slip cannot silently drop the equivalence contract.
//
//===----------------------------------------------------------------------===//

#include "core/Lowering.h"
#include "defacto/Suite.h"
#include "exec/Driver.h"
#include "exec/Pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cerb;

namespace {

exec::CompileResult compileWith(std::string_view Src, bool Lower) {
  exec::FrontendOptions FE;
  FE.CoreLower = Lower;
  auto R = exec::compileWithStats(Src, FE);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.error().str());
  return std::move(*R);
}

constexpr const char *BindingHeavy = R"(
int add3(int a, int b, int c) { return a + b + c; }
int main(void) {
  int i, s = 0;
  for (i = 0; i < 5; i++)
    s = add3(s, i, 2 + 3);
  return s;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// Slot resolution
//===----------------------------------------------------------------------===//

TEST(Lowering, AssignsSlotsAndMarksProgramLowered) {
  exec::CompileResult R = compileWith(BindingHeavy, true);
  EXPECT_TRUE(R.Prog.Lowered);
  EXPECT_GT(R.Lowering.SlotsAssigned, 0u);
  EXPECT_EQ(R.Prog.NumSlots, R.Lowering.SlotsAssigned);
}

TEST(Lowering, UnloweredCompileLeavesProgramUntouched) {
  exec::CompileResult R = compileWith(BindingHeavy, false);
  EXPECT_FALSE(R.Prog.Lowered);
  EXPECT_EQ(R.Lowering.SlotsAssigned, 0u);
  EXPECT_EQ(R.Prog.NumSlots, 0u);
}

TEST(Lowering, SlotPathComputesTheSameExit) {
  exec::RunOptions Opts;
  exec::Outcome L = exec::runOnce(compileWith(BindingHeavy, true).Prog, Opts);
  exec::Outcome T = exec::runOnce(compileWith(BindingHeavy, false).Prog, Opts);
  EXPECT_EQ(L.str(), T.str());
}

TEST(Lowering, IdempotentSecondLowerIsANoOp) {
  exec::CompileResult R = compileWith(BindingHeavy, true);
  unsigned Slots = R.Prog.NumSlots;
  core::LoweringStats Again = core::lower(R.Prog);
  EXPECT_EQ(Again.SlotsAssigned, 0u);
  EXPECT_EQ(R.Prog.NumSlots, Slots);
  exec::RunOptions Opts;
  EXPECT_EQ(exec::runOnce(R.Prog, Opts).str(),
            exec::runOnce(compileWith(BindingHeavy, false).Prog, Opts).str());
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

TEST(Lowering, FoldsLiteralArithmetic) {
  exec::CompileResult R = compileWith(BindingHeavy, true);
  EXPECT_GT(R.Lowering.ConstFolds, 0u); // the `2 + 3` argument
}

TEST(Lowering, FoldingPreservesWraparound) {
  // Folding mirrors evaluator semantics, including unsigned wraparound.
  const char *Src = R"(
#include <stdio.h>
int main(void) {
  printf("%u\n", 4294967295u + 1u);
  return 0;
}
)";
  exec::RunOptions Opts;
  exec::Outcome L = exec::runOnce(compileWith(Src, true).Prog, Opts);
  exec::Outcome T = exec::runOnce(compileWith(Src, false).Prog, Opts);
  EXPECT_EQ(L.str(), T.str());
  EXPECT_EQ(L.Stdout, "0\n");
}

TEST(Lowering, DivisionByZeroIsLeftForTheDynamics) {
  // Anything the evaluator diagnoses must stay unfolded so the dynamic
  // error (UB) still fires on the same path in both variants.
  const char *Src = "int main(void){ int z = 0; return 1 / z; }";
  exec::RunOptions Opts;
  exec::Outcome L = exec::runOnce(compileWith(Src, true).Prog, Opts);
  exec::Outcome T = exec::runOnce(compileWith(Src, false).Prog, Opts);
  EXPECT_EQ(L.Kind, exec::OutcomeKind::Undef) << L.str();
  EXPECT_EQ(L.str(), T.str());
}

//===----------------------------------------------------------------------===//
// Constant interning
//===----------------------------------------------------------------------===//

TEST(Lowering, InternsRepeatedConstants) {
  const char *Src = R"(
int main(void) {
  int a = 42, b = 42, c = 42, d = 42;
  return (a + b + c + d) / 42 - 4;
}
)";
  exec::CompileResult R = compileWith(Src, true);
  EXPECT_GT(R.Lowering.ConstsInterned, 0u);
  EXPECT_GT(R.Lowering.PoolSize, 0u);
  // Deduplication: strictly fewer distinct pooled constants than pooled
  // occurrences.
  EXPECT_LT(R.Lowering.PoolSize, R.Lowering.ConstsInterned);
  exec::RunOptions Opts;
  EXPECT_EQ(exec::runOnce(R.Prog, Opts).ExitCode, 0);
}

//===----------------------------------------------------------------------===//
// ValueOnly marking (the evalPure fast-path eligibility proof)
//===----------------------------------------------------------------------===//

TEST(Lowering, MarksPureNodes) {
  exec::CompileResult R = compileWith(BindingHeavy, true);
  EXPECT_GT(R.Lowering.PureNodes, 0u);
  // An unlowered compile must not mark anything: the flag gates a
  // slot-path-only interpreter.
  EXPECT_EQ(compileWith(BindingHeavy, false).Lowering.PureNodes, 0u);
}

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

TEST(Lowering, FrontendFingerprintSeparatesTheVariants) {
  exec::FrontendOptions On, Off;
  On.CoreLower = true;
  Off.CoreLower = false;
  EXPECT_NE(On.fingerprint(), Off.fingerprint());
}

//===----------------------------------------------------------------------===//
// Differential sweep: lowered vs tree-walking over the real suites
//===----------------------------------------------------------------------===//

namespace {

/// Sorted multiset of distinct outcomes — the observable result of an
/// exhaustive exploration, independent of path enumeration order.
std::vector<std::string> outcomeSet(const exec::ExhaustiveResult &R) {
  std::vector<std::string> S;
  for (const exec::Outcome &O : R.Distinct)
    S.push_back(O.str());
  std::sort(S.begin(), S.end());
  return S;
}

/// Compiles \p Src both ways and expects byte-identical exhaustive
/// reports under \p Policy. Compile errors must agree too.
void expectEquivalent(const std::string &Name, const std::string &Src,
                      const mem::MemoryPolicy &Policy) {
  exec::FrontendOptions On, Off;
  On.CoreLower = true;
  Off.CoreLower = false;
  auto L = exec::compileWithStats(Src, On);
  auto T = exec::compileWithStats(Src, Off);
  ASSERT_EQ(static_cast<bool>(L), static_cast<bool>(T))
      << Name << ": one variant failed to compile";
  if (!L) {
    EXPECT_EQ(L.error().str(), T.error().str()) << Name;
    return;
  }
  exec::RunOptions Opts;
  Opts.Policy = Policy;
  Opts.MaxPaths = 256;
  exec::ExhaustiveResult RL = exec::runExhaustive(L->Prog, Opts);
  exec::ExhaustiveResult RT = exec::runExhaustive(T->Prog, Opts);
  EXPECT_EQ(RL.PathsExplored, RT.PathsExplored) << Name;
  EXPECT_EQ(outcomeSet(RL), outcomeSet(RT)) << Name;
}

} // namespace

TEST(LoweringDifferential, DefactoSuiteIsEquivalent) {
  const mem::MemoryPolicy Policy = mem::MemoryPolicy::defacto();
  for (const defacto::TestCase &T : defacto::testSuite())
    expectEquivalent(T.Name, T.Source, Policy);
}

TEST(LoweringDifferential, CorpusIsEquivalentUnderEveryPolicy) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::path(CERB_SOURCE_DIR) / "tests" / "corpus";
  unsigned Seen = 0;
  for (const auto &Ent : fs::directory_iterator(Dir)) {
    if (Ent.path().extension() != ".c")
      continue;
    std::ifstream In(Ent.path());
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ++Seen;
    for (const mem::MemoryPolicy &P : mem::MemoryPolicy::allPresets())
      expectEquivalent(Ent.path().filename().string() + "/" + P.Name,
                       Buf.str(), P);
  }
  EXPECT_GT(Seen, 5u) << "corpus directory unexpectedly empty";
}
