//===-- tests/test_types.cpp - CType / ImplEnv / typing unit tests --------===//

#include "ail/CType.h"
#include "ail/Desugar.h"
#include "typing/TypeCheck.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::ail;

namespace {

struct TypesFixture : ::testing::Test {
  TagTable Tags;
  ImplEnv Env{Tags};
};

} // namespace

TEST_F(TypesFixture, ScalarSizesLP64) {
  EXPECT_EQ(Env.sizeOf(CType::makeInteger(IntKind::Char)), 1u);
  EXPECT_EQ(Env.sizeOf(CType::makeInteger(IntKind::Short)), 2u);
  EXPECT_EQ(Env.sizeOf(CType::makeInteger(IntKind::Int)), 4u);
  EXPECT_EQ(Env.sizeOf(CType::makeInteger(IntKind::Long)), 8u);
  EXPECT_EQ(Env.sizeOf(CType::makeInteger(IntKind::LongLong)), 8u);
  EXPECT_EQ(Env.sizeOf(CType::makePointer(CType::intTy())), 8u);
}

TEST_F(TypesFixture, StructLayoutWithPadding) {
  unsigned Tag = Tags.createTag(false, "s");
  Tags.complete(Tag, {{"c", CType::charTy()}, {"i", CType::intTy()}});
  CType S = CType::makeStruct(Tag);
  EXPECT_EQ(Env.sizeOf(S), 8u); // 1 + 3 padding + 4
  EXPECT_EQ(Env.alignOf(S), 4u);
  EXPECT_EQ(Env.offsetOf(Tag, 0), 0u);
  EXPECT_EQ(Env.offsetOf(Tag, 1), 4u);
}

TEST_F(TypesFixture, StructTailPadding) {
  unsigned Tag = Tags.createTag(false, "t");
  Tags.complete(Tag, {{"i", CType::intTy()}, {"c", CType::charTy()}});
  EXPECT_EQ(Env.sizeOf(CType::makeStruct(Tag)), 8u); // tail-padded to 4
}

TEST_F(TypesFixture, UnionLayout) {
  unsigned Tag = Tags.createTag(true, "u");
  Tags.complete(Tag, {{"c", CType::charTy()},
                      {"l", CType::makeInteger(IntKind::Long)}});
  CType U = CType::makeUnion(Tag);
  EXPECT_EQ(Env.sizeOf(U), 8u);
  EXPECT_EQ(Env.offsetOf(Tag, 0), 0u);
  EXPECT_EQ(Env.offsetOf(Tag, 1), 0u);
}

TEST_F(TypesFixture, ArraySizes) {
  CType A = CType::makeArray(CType::intTy(), 7);
  EXPECT_EQ(Env.sizeOf(A), 28u);
  EXPECT_EQ(Env.alignOf(A), 4u);
}

TEST_F(TypesFixture, IntegerRanges) {
  EXPECT_EQ(Env.maxOf(IntKind::Int), Int128(2147483647));
  EXPECT_EQ(Env.minOf(IntKind::Int), Int128(-2147483647) - 1);
  EXPECT_EQ(Env.maxOf(IntKind::UInt), Int128(4294967295ULL));
  EXPECT_EQ(Env.minOf(IntKind::UInt), Int128(0));
  EXPECT_EQ(Env.maxOf(IntKind::Bool), Int128(1));
}

TEST_F(TypesFixture, ConversionSemantics) {
  // Unsigned conversions reduce modulo 2^N (6.3.1.3p2).
  EXPECT_EQ(Env.convert(IntKind::UChar, 258), Int128(2));
  EXPECT_EQ(Env.convert(IntKind::UInt, -1), Int128(4294967295ULL));
  // Our impl-defined signed conversion: twos-complement wrap (6.3.1.3p3).
  EXPECT_EQ(Env.convert(IntKind::SChar, 128), Int128(-128));
  EXPECT_EQ(Env.convert(IntKind::Int, Int128(1) << 31),
            Env.minOf(IntKind::Int));
  // _Bool: any nonzero becomes 1 (6.3.1.2).
  EXPECT_EQ(Env.convert(IntKind::Bool, 42), Int128(1));
  EXPECT_EQ(Env.convert(IntKind::Bool, 0), Int128(0));
}

TEST_F(TypesFixture, StructuralEquality) {
  CType A = CType::makePointer(CType::intTy());
  CType B = CType::makePointer(CType::intTy());
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == CType::makePointer(CType::uintTy()));
  EXPECT_TRUE(CType::makeArray(CType::charTy(), 3) ==
              CType::makeArray(CType::charTy(), 3));
  EXPECT_FALSE(CType::makeArray(CType::charTy(), 3) ==
               CType::makeArray(CType::charTy(), 4));
}

//===----------------------------------------------------------------------===//
// Integer constant decoding (6.4.4.1)
//===----------------------------------------------------------------------===//

struct ConstCase {
  const char *Spelling;
  long long Value;
  IntKind Kind;
};

class DecodeConst : public ::testing::TestWithParam<ConstCase> {};

TEST_P(DecodeConst, LadderAndValue) {
  const ConstCase &C = GetParam();
  auto R = decodeIntConst(C.Spelling, SourceLoc());
  ASSERT_TRUE(static_cast<bool>(R)) << C.Spelling;
  EXPECT_EQ(R->first, Int128(C.Value)) << C.Spelling;
  EXPECT_EQ(R->second.intKind(), C.Kind) << C.Spelling;
}

INSTANTIATE_TEST_SUITE_P(
    Ladder, DecodeConst,
    ::testing::Values(
        ConstCase{"0", 0, IntKind::Int},
        ConstCase{"42", 42, IntKind::Int},
        ConstCase{"2147483647", 2147483647LL, IntKind::Int},
        // Decimal constants never become unsigned without a suffix.
        ConstCase{"2147483648", 2147483648LL, IntKind::Long},
        // Hex constants may (6.4.4.1p5).
        ConstCase{"0x80000000", 2147483648LL, IntKind::UInt},
        ConstCase{"0xFFFFFFFF", 4294967295LL, IntKind::UInt},
        ConstCase{"1u", 1, IntKind::UInt},
        ConstCase{"1l", 1, IntKind::Long},
        ConstCase{"1ul", 1, IntKind::ULong},
        ConstCase{"1ll", 1, IntKind::LongLong},
        ConstCase{"0u", 0, IntKind::UInt},
        ConstCase{"017", 15, IntKind::Int},
        ConstCase{"0x10", 16, IntKind::Int}));

TEST(DecodeConstErrors, BadForms) {
  EXPECT_FALSE(static_cast<bool>(decodeIntConst("08", SourceLoc())));
  EXPECT_FALSE(static_cast<bool>(decodeIntConst("1uu", SourceLoc())));
  EXPECT_FALSE(static_cast<bool>(decodeIntConst("1lll", SourceLoc())));
  EXPECT_FALSE(static_cast<bool>(decodeIntConst("1.5", SourceLoc())));
}

//===----------------------------------------------------------------------===//
// Promotions and usual arithmetic conversions (6.3.1.1 / 6.3.1.8)
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, IntegerPromotions) {
  auto P = [&](IntKind K) {
    return typing::promote(Env, CType::makeInteger(K)).intKind();
  };
  EXPECT_EQ(P(IntKind::Bool), IntKind::Int);
  EXPECT_EQ(P(IntKind::Char), IntKind::Int);
  EXPECT_EQ(P(IntKind::UChar), IntKind::Int); // fits in int -> int
  EXPECT_EQ(P(IntKind::Short), IntKind::Int);
  EXPECT_EQ(P(IntKind::UShort), IntKind::Int);
  EXPECT_EQ(P(IntKind::Int), IntKind::Int);
  EXPECT_EQ(P(IntKind::UInt), IntKind::UInt);
  EXPECT_EQ(P(IntKind::Long), IntKind::Long);
}

struct UacCase {
  IntKind A, B, Result;
};

class UsualArith : public ::testing::TestWithParam<UacCase> {};

TEST_P(UsualArith, Table) {
  TagTable Tags;
  ImplEnv Env(Tags);
  const UacCase &C = GetParam();
  EXPECT_EQ(typing::usualArithmetic(Env, CType::makeInteger(C.A),
                                    CType::makeInteger(C.B))
                .intKind(),
            C.Result);
  // Symmetric.
  EXPECT_EQ(typing::usualArithmetic(Env, CType::makeInteger(C.B),
                                    CType::makeInteger(C.A))
                .intKind(),
            C.Result);
}

INSTANTIATE_TEST_SUITE_P(
    Table, UsualArith,
    ::testing::Values(
        UacCase{IntKind::Char, IntKind::Char, IntKind::Int},
        UacCase{IntKind::Int, IntKind::Int, IntKind::Int},
        UacCase{IntKind::Int, IntKind::UInt, IntKind::UInt},
        // long (64-bit) can represent all of unsigned int (32-bit).
        UacCase{IntKind::Long, IntKind::UInt, IntKind::Long},
        UacCase{IntKind::Int, IntKind::Long, IntKind::Long},
        UacCase{IntKind::Int, IntKind::ULong, IntKind::ULong},
        // long and unsigned long have equal rank 64-bit: unsigned wins.
        UacCase{IntKind::Long, IntKind::ULong, IntKind::ULong},
        // long long cannot represent all unsigned long values (same
        // width): the unsigned version of long long.
        UacCase{IntKind::LongLong, IntKind::ULong, IntKind::ULongLong},
        UacCase{IntKind::Short, IntKind::UShort, IntKind::Int}));

//===----------------------------------------------------------------------===//
// The -1 < (unsigned)0 surprise (§5.5)
//===----------------------------------------------------------------------===//

TEST_F(TypesFixture, MinusOneVsUnsignedZero) {
  // §5.5: "-1 < (unsigned int)0 ... can evaluate to 0 (false)".
  // The common type is unsigned int, so -1 converts to UINT_MAX.
  CType Common = typing::usualArithmetic(Env, CType::intTy(),
                                         CType::uintTy());
  EXPECT_EQ(Common.intKind(), IntKind::UInt);
  EXPECT_EQ(Env.convert(Common.intKind(), -1), Int128(4294967295ULL));
}
