//===-- tests/test_desugar.cpp - Cabs_to_Ail desugaring unit tests --------===//

#include "ail/Desugar.h"
#include "cabs/Parser.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::ail;

namespace {

AilProgram desugarOk(std::string_view Src) {
  auto U = cabs::parseTranslationUnit(Src);
  EXPECT_TRUE(static_cast<bool>(U)) << (U ? "" : U.error().str());
  auto A = desugar(*U);
  EXPECT_TRUE(static_cast<bool>(A)) << (A ? "" : A.error().str());
  return A ? std::move(*A) : AilProgram{};
}

StaticError desugarErr(std::string_view Src) {
  auto U = cabs::parseTranslationUnit(Src);
  EXPECT_TRUE(static_cast<bool>(U)) << (U ? "" : U.error().str());
  auto A = desugar(*U);
  EXPECT_FALSE(static_cast<bool>(A)) << "unexpectedly desugared";
  return A ? StaticError{} : A.error();
}

/// Counts statements of a given kind in a subtree.
unsigned count(const AilStmt &S, AilStmtKind K) {
  unsigned N = S.Kind == K ? 1 : 0;
  for (const AilStmtPtr &Sub : S.Body)
    N += count(*Sub, K);
  return N;
}

const AilFunction &mainOf(const AilProgram &P) {
  const AilFunction *F = P.findFunction(P.Main);
  EXPECT_NE(F, nullptr);
  return *F;
}

} // namespace

TEST(Desugar, ForBecomesWhile) {
  AilProgram P = desugarOk(R"(
int main(void) {
  int i;
  for (i = 0; i < 3; i++) { }
  return 0;
}
)");
  const AilStmt &Body = *mainOf(P).Body;
  EXPECT_EQ(count(Body, AilStmtKind::While), 1u);
  // The for-condition survives as the while condition; the step becomes a
  // trailing statement with a fresh label for `continue`.
  EXPECT_GE(count(Body, AilStmtKind::Label), 1u);
}

TEST(Desugar, DoWhileBecomesWhileOne) {
  AilProgram P = desugarOk(R"(
int main(void) {
  int i = 0;
  do { i++; } while (i < 2);
  return i;
}
)");
  const AilStmt &Body = *mainOf(P).Body;
  EXPECT_EQ(count(Body, AilStmtKind::While), 1u);
  // do-while exits via `if (!cond) break` at the loop tail.
  EXPECT_GE(count(Body, AilStmtKind::Break), 1u);
}

TEST(Desugar, ContinueInForRedirectsToFreshLabel) {
  AilProgram P = desugarOk(R"(
int main(void) {
  int i;
  for (i = 0; i < 5; i++) {
    if (i == 1) continue;
  }
  return 0;
}
)");
  const AilStmt &Body = *mainOf(P).Body;
  // The continue became a goto (to the step label), not a Continue.
  EXPECT_EQ(count(Body, AilStmtKind::Continue), 0u);
  EXPECT_GE(count(Body, AilStmtKind::Goto), 1u);
}

TEST(Desugar, ContinueInPlainWhileIsKept) {
  AilProgram P = desugarOk(R"(
int main(void) {
  int i = 0;
  while (i < 5) {
    i++;
    if (i == 1) continue;
  }
  return 0;
}
)");
  EXPECT_EQ(count(*mainOf(P).Body, AilStmtKind::Continue), 1u);
}

TEST(Desugar, NestedLoopContinueBindsInner) {
  AilProgram P = desugarOk(R"(
int main(void) {
  int i = 0, j;
  while (i < 2) {
    i++;
    for (j = 0; j < 2; j++) {
      if (j) continue; /* -> goto (for's label) */
    }
    if (i) continue;   /* -> plain Continue (while) */
  }
  return 0;
}
)");
  const AilStmt &Body = *mainOf(P).Body;
  EXPECT_EQ(count(Body, AilStmtKind::Continue), 1u);
  EXPECT_GE(count(Body, AilStmtKind::Goto), 1u);
}

TEST(Desugar, EnumConstantsAreFolded) {
  AilProgram P = desugarOk(R"(
enum e { A = 3, B, C = 10, D };
int main(void) { return B + D; }
)");
  // No identifiers left for B/D: they are IntConsts 4 and 11.
  const AilStmt &Body = *mainOf(P).Body;
  const AilStmt *Ret = nullptr;
  std::function<void(const AilStmt &)> Find = [&](const AilStmt &S) {
    if (S.Kind == AilStmtKind::Return)
      Ret = &S;
    for (const AilStmtPtr &Sub : S.Body)
      Find(*Sub);
  };
  Find(Body);
  ASSERT_NE(Ret, nullptr);
  ASSERT_EQ(Ret->E->Kind, AilExprKind::Binary);
  EXPECT_EQ(Ret->E->Kids[0]->Kind, AilExprKind::IntConst);
  EXPECT_EQ(Ret->E->Kids[0]->IntValue, Int128(4));
  EXPECT_EQ(Ret->E->Kids[1]->IntValue, Int128(11));
}

TEST(Desugar, StringLiteralsAreHoistedToGlobals) {
  AilProgram P = desugarOk(R"(
int main(void) {
  const char *s = "hi";
  return 0;
}
)");
  bool Found = false;
  for (const AilGlobal &G : P.Globals)
    if (G.IsStringLiteral) {
      Found = true;
      ASSERT_TRUE(G.Ty.isArray());
      EXPECT_EQ(*G.Ty.arraySize(), 3u); // "hi" + NUL
    }
  EXPECT_TRUE(Found);
}

TEST(Desugar, CharArrayInitFromStringStaysInPlace) {
  AilProgram P = desugarOk(R"(
int main(void) {
  char buf[] = "abc";
  return (int)sizeof buf;
}
)");
  // No hoisted string-literal global: the bytes initialise buf directly.
  for (const AilGlobal &G : P.Globals)
    EXPECT_FALSE(G.IsStringLiteral);
}

TEST(Desugar, ArrowDesugarsToDerefMember) {
  AilProgram P = desugarOk(R"(
struct s { int x; };
int f(struct s *p) { return p->x; }
int main(void) { return 0; }
)");
  (void)P; // structural success is the assertion (p->x became (*p).x)
}

TEST(Desugar, IndexDesugarsToDerefAdd) {
  AilProgram P = desugarOk(R"(
int main(void) {
  int a[3];
  a[1] = 2;
  return a[1];
}
)");
  (void)P;
}

TEST(Desugar, BlockScopeStaticBecomesGlobal) {
  AilProgram P = desugarOk(R"(
int f(void) {
  static int hits;
  hits++;
  return hits;
}
int main(void) { return f(); }
)");
  bool Found = false;
  for (const AilGlobal &G : P.Globals)
    if (P.Syms.nameOf(G.Sym).rfind("hits", 0) == 0)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Desugar, ShadowingResolvesToInnermost) {
  AilProgram P = desugarOk(R"(
int x = 1;
int main(void) {
  int x = 2;
  {
    int x = 3;
    if (x != 3) return 1;
  }
  return x == 2 ? 0 : 1;
}
)");
  // Three distinct symbols named x.
  unsigned Xs = 0;
  for (size_t I = 0; I < P.Syms.size(); ++I)
    if (P.Syms.nameOf(ail::Symbol{static_cast<unsigned>(I)}) == "x")
      ++Xs;
  EXPECT_EQ(Xs, 3u);
}

TEST(Desugar, ArraySizeFromInitialiser) {
  AilProgram P = desugarOk("int a[] = {1, 2, 3, 4};\nint main(void){return 0;}");
  ASSERT_TRUE(P.Globals[0].Ty.isArray());
  EXPECT_EQ(*P.Globals[0].Ty.arraySize(), 4u);
}

TEST(Desugar, ConstantExpressionsInArrayBounds) {
  AilProgram P = desugarOk(R"(
enum { N = 3 };
int a[N * 2 + 1];
int main(void) { return 0; }
)");
  EXPECT_EQ(*P.Globals[0].Ty.arraySize(), 7u);
}

TEST(Desugar, ErrorsCiteClauses) {
  EXPECT_EQ(desugarErr("int a[0]; int main(void){return 0;}").IsoClause,
            "6.7.6.2p1");
  EXPECT_EQ(desugarErr(R"(
int main(void) {
  goto nowhere;
  return 0;
}
)")
                .IsoClause,
            "6.8.6.1p1");
  EXPECT_EQ(desugarErr(R"(
struct s { int x; };
struct s { int y; };
int main(void) { return 0; }
)")
                .IsoClause,
            "6.7.2.3p1");
}

TEST(Desugar, DuplicateLabelRejected) {
  auto E = desugarErr(R"(
int main(void) {
l: ;
l: ;
  return 0;
}
)");
  EXPECT_EQ(E.IsoClause, "6.8.1p3");
}

TEST(Desugar, TypedefChains) {
  AilProgram P = desugarOk(R"(
typedef int base;
typedef base *baseptr;
typedef baseptr table[4];
table t;
int main(void) { return 0; }
)");
  // t: array[4] of pointer to int
  ASSERT_TRUE(P.Globals[0].Ty.isArray());
  EXPECT_TRUE(P.Globals[0].Ty.element().isPointer());
  EXPECT_TRUE(P.Globals[0].Ty.element().pointee().isInteger());
}

TEST(Desugar, BuiltinsAreDeclared) {
  AilProgram P = desugarOk("int main(void){ return 0; }");
  EXPECT_FALSE(P.Builtins.empty());
  unsigned Printfs = 0;
  for (const auto &[Id, B] : P.Builtins)
    if (B == Builtin::Printf)
      ++Printfs;
  EXPECT_EQ(Printfs, 1u);
}
