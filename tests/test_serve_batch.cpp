//===-- tests/test_serve_batch.cpp - batch op + compile cache -------------===//
//
// Locks down the server-side suite batching stack from the bottom up:
//
//  - exec::CompileCache as a *daemon-resident* LRU: byte-budget eviction,
//    frontend-options keying, deterministic counter accounting, and
//    single-flight concurrency (one elaboration per key, ever).
//  - the `batch` wire format: envelope-shared defaults, per-request
//    overrides, and pre-allocation rejection of malformed documents.
//  - batch determinism goldens: the reply bytes of a 32-request batch are
//    identical for any daemon thread count, any request order, any client
//    pipeline depth, and identical to 32 sequential `eval` calls. Golden
//    fingerprints live in tests/goldens/serve_batch.golden; regenerate with
//      CERB_UPDATE_GOLDENS=1 ./build/tests/cerb_serve_batch_tests
//  - whole-batch admission control and the callBatch retry machinery
//    (idempotent resend of only the missing ids).
//
//===----------------------------------------------------------------------===//

#include "exec/CompileCache.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "serve/Protocol.h"
#include "support/FaultInjector.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

using namespace cerb;
using namespace cerb::serve;

namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path Path;
  TempDir() {
    std::string Tmpl =
        (fs::temp_directory_path() / "cerb-batch-test-XXXXXX").string();
    char *P = ::mkdtemp(Tmpl.data());
    if (!P)
      std::abort();
    Path = P;
  }
  ~TempDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str(const char *Leaf) const { return (Path / Leaf).string(); }
};

struct DaemonFixture {
  TempDir T;
  std::unique_ptr<Daemon> D;

  explicit DaemonFixture(unsigned Threads = 2, uint64_t MaxQueue = 64,
                         uint64_t CompileCacheMb = 256) {
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("d.sock");
    Cfg.Threads = Threads;
    Cfg.MaxQueue = MaxQueue;
    Cfg.CompileCacheMb = CompileCacheMb;
    D = std::make_unique<Daemon>(std::move(Cfg));
  }

  Client client(RetryPolicy RP = RetryPolicy()) {
    auto C = Client::connect(T.str("d.sock"), -1, RP);
    EXPECT_TRUE(static_cast<bool>(C));
    return std::move(*C);
  }

  void drain() {
    D->requestDrain();
    EXPECT_EQ(D->waitUntilDrained(), 0);
  }
};

/// Four distinct tiny programs; a 32-request suite shares each across 8
/// seeds, so the compile cache sees 4 misses and 28 hits per cold batch.
std::string batchSource(unsigned I) {
  return "int main(void) { return " + std::to_string(I % 4) + "; }\n";
}

/// The canonical 32-request suite every determinism test reuses.
std::vector<EvalRequest> suite32() {
  std::vector<EvalRequest> Reqs;
  for (unsigned I = 0; I < 32; ++I) {
    EvalRequest Q;
    Q.Id = "q" + std::to_string(I);
    Q.Name = "batch-t" + std::to_string(I % 4);
    Q.Source = batchSource(I);
    Q.Policies = {mem::MemoryPolicy::defacto(), mem::MemoryPolicy::strictIso()};
    Q.ExecMode = oracle::Mode::Random;
    Q.Seed = 1 + I;
    Reqs.push_back(std::move(Q));
  }
  return Reqs;
}

uint64_t fnv64(std::string_view S) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : S) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  return H;
}

std::string hex64(uint64_t V) {
  static const char *Digits = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    S[I] = Digits[V & 0xF];
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// CompileCache as a daemon-resident LRU
//===----------------------------------------------------------------------===//

TEST(CompileCacheUnit, FrontendOptionsAreKeyMaterial) {
  exec::CompileCache C;
  std::string Src = batchSource(0);
  exec::FrontendOptions Plain;          // CoreSimplify on
  exec::FrontendOptions NoSimp;
  NoSimp.CoreSimplify = false;
  ASSERT_NE(Plain.fingerprint(), NoSimp.fingerprint());

  bool Hit = true;
  auto A = C.get(Src, Plain, &Hit);
  ASSERT_TRUE(A && A->ok());
  EXPECT_FALSE(Hit);
  auto B = C.get(Src, NoSimp, &Hit);
  ASSERT_TRUE(B && B->ok());
  EXPECT_FALSE(Hit) << "same source + different options must miss";
  EXPECT_NE(A.get(), B.get()) << "distinct keys compile distinct units";
  // The knob is real: the no-simplify unit carries zero rewrites.
  EXPECT_EQ(B->Rewrites.PureLetsInlined + B->Rewrites.ConstIfsFolded +
                B->Rewrites.UnseqSingletons + B->Rewrites.SkipSeqsDropped,
            0u);

  EXPECT_EQ(C.get(Src, Plain, &Hit).get(), A.get());
  EXPECT_TRUE(Hit);
  EXPECT_EQ(C.get(Src, NoSimp, &Hit).get(), B.get());
  EXPECT_TRUE(Hit);
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(CompileCacheUnit, LruEvictionRespectsTheByteBudget) {
  std::string S0 = batchSource(0), S1 = batchSource(1), S2 = batchSource(2);
  ASSERT_EQ(S0.size(), S1.size());
  ASSERT_EQ(S1.size(), S2.size());
  const uint64_t One = exec::CompileCache::entryCharge(S0.size());

  // Budget for exactly two entries: the third insert evicts the LRU.
  exec::CompileCache C(2 * One);
  ASSERT_TRUE(C.get(S0)->ok());
  ASSERT_TRUE(C.get(S1)->ok());
  EXPECT_EQ(C.stats().Entries, 2u);
  EXPECT_EQ(C.stats().Bytes, 2 * One);

  ASSERT_TRUE(C.get(S0)->ok()); // S0 is now MRU; S1 is the victim
  ASSERT_TRUE(C.get(S2)->ok());
  EXPECT_EQ(C.evictions(), 1u);
  EXPECT_EQ(C.stats().Entries, 2u);
  EXPECT_LE(C.stats().Bytes, 2 * One);

  bool Hit = false;
  C.get(S0, &Hit);
  EXPECT_TRUE(Hit) << "the MRU entry must have survived";
  C.get(S1, &Hit);
  EXPECT_FALSE(Hit) << "the LRU entry must have been evicted";
  EXPECT_EQ(C.evictions(), 2u) << "recompiling S1 evicts again at budget";
}

TEST(CompileCacheUnit, CounterDeltasMatchAForcedPattern) {
  std::string S0 = batchSource(0), S1 = batchSource(1), S2 = batchSource(2);
  exec::CompileCache C(2 * exec::CompileCache::entryCharge(S0.size()));
  // Forced pattern: M M H H M(evict) H M(evict) — counters must track it
  // exactly (accounting is deterministic by design; see EntryOverheadBytes).
  C.get(S0);              // miss
  C.get(S1);              // miss
  C.get(S0);              // hit
  C.get(S1);              // hit
  C.get(S2);              // miss, evicts S0 (LRU)
  C.get(S2);              // hit
  C.get(S0);              // miss again, evicts S1
  exec::CompileCacheStats S = C.stats();
  EXPECT_EQ(S.Misses, 4u);
  EXPECT_EQ(S.Hits, 3u);
  EXPECT_EQ(S.Evictions, 2u);
  EXPECT_EQ(S.Entries, 2u);
}

TEST(CompileCacheUnit, UnboundedCacheNeverEvicts) {
  exec::CompileCache C; // budget 0 = unbounded
  for (unsigned I = 0; I < 16; ++I)
    ASSERT_TRUE(C.get("int main(void) { return " + std::to_string(I) +
                      "; }\n")
                    ->ok());
  EXPECT_EQ(C.evictions(), 0u);
  EXPECT_EQ(C.stats().Entries, 16u);
}

TEST(CompileCacheUnit, ConcurrentSameKeyCompilesExactlyOnce) {
  exec::CompileCache C;
  const std::string Src = batchSource(3);
  constexpr unsigned N = 8;
  std::vector<std::shared_ptr<const exec::CompiledUnit>> Units(N);
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([&, I] { Units[I] = C.get(Src); });
  for (std::thread &T : Threads)
    T.join();
  // Single-flight: whatever the interleaving, one miss and one unit —
  // every other thread either waited on the in-flight slot or hit the
  // published entry. No thundering herd of elaborations.
  EXPECT_EQ(C.misses(), 1u);
  EXPECT_EQ(C.hits(), N - 1);
  for (unsigned I = 1; I < N; ++I)
    EXPECT_EQ(Units[I].get(), Units[0].get());
  ASSERT_TRUE(Units[0] && Units[0]->ok());
}

//===----------------------------------------------------------------------===//
// Batch wire format
//===----------------------------------------------------------------------===//

TEST(BatchProtocol, SharedSourceAndOverridesRoundTrip) {
  std::vector<EvalRequest> Reqs;
  for (unsigned I = 0; I < 3; ++I) {
    EvalRequest Q;
    Q.Id = "r" + std::to_string(I);
    Q.Name = "shared";
    Q.Source = batchSource(0); // all equal => hoisted onto the envelope
    Q.Policies = {mem::MemoryPolicy::defacto()};
    Q.Seed = 10 + I;
    Reqs.push_back(std::move(Q));
  }
  Reqs[2].Policies = {mem::MemoryPolicy::cheri()};
  Reqs[2].ExecMode = oracle::Mode::Once;
  Reqs[2].Frontend.CoreSimplify = false;
  Reqs[2].CheckExpect = true;

  std::string Frame = serializeBatchRequest("batch-7", Reqs);
  // The shared source appears exactly once on the wire.
  size_t First = Frame.find("int main");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Frame.find("int main", First + 1), std::string::npos);

  auto R = parseRequest(Frame);
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
  ASSERT_EQ(R->Kind, Op::Batch);
  EXPECT_EQ(R->Batch.Id, "batch-7");
  ASSERT_EQ(R->Batch.Requests.size(), 3u);
  for (unsigned I = 0; I < 3; ++I) {
    EXPECT_EQ(R->Batch.Requests[I].Id, Reqs[I].Id);
    EXPECT_EQ(R->Batch.Requests[I].Source, Reqs[I].Source);
    EXPECT_EQ(R->Batch.Requests[I].Seed, Reqs[I].Seed);
    EXPECT_EQ(cacheKeyMaterial(R->Batch.Requests[I]),
              cacheKeyMaterial(Reqs[I]))
        << "request " << I << " must key identically after the round trip";
  }
  EXPECT_EQ(R->Batch.Requests[2].Policies[0].Name, "cheri");
  EXPECT_EQ(R->Batch.Requests[2].ExecMode, oracle::Mode::Once);
  EXPECT_FALSE(R->Batch.Requests[2].Frontend.CoreSimplify);
  EXPECT_TRUE(R->Batch.Requests[2].CheckExpect);
}

TEST(BatchProtocol, MalformedBatchesAreRejectedBeforeAllocation) {
  auto Reject = [](const std::string &Frame, const char *Needle) {
    auto R = parseRequest(Frame);
    ASSERT_FALSE(static_cast<bool>(R)) << Frame;
    EXPECT_NE(R.error().Message.find(Needle), std::string::npos)
        << R.error().Message;
  };
  const std::string Head = "{\"schema\": \"cerb-serve/1\", \"op\": \"batch\"";
  Reject(Head + "}", "requests");
  Reject(Head + ", \"requests\": []}", "zero requests");
  Reject(Head + ", \"source\": \"int main(void){}\", \"requests\": "
                "[{\"id\": \"a\"}, {\"id\": \"a\"}]}",
         "duplicate");
  Reject(Head + ", \"requests\": [{\"id\": \"a\"}]}", "no \"source\"");
  Reject(Head + ", \"source\": \"x\", \"requests\": [{\"id\": \"\"}]}",
         "non-empty");
  Reject(Head + ", \"source\": \"x\", \"requests\": [\"not-an-object\"]}",
         "objects");

  std::string Oversize = Head + ", \"source\": \"x\", \"requests\": [";
  for (size_t I = 0; I <= MaxBatchRequests; ++I) {
    if (I)
      Oversize += ", ";
    Oversize += "{\"id\": \"q" + std::to_string(I) + "\"}";
  }
  Oversize += "]}";
  Reject(Oversize, "cap");
}

TEST(BatchProtocol, BatchDoneFrameRoundTrips) {
  auto P = parseResponse(batchDoneResponse("b-1", 32, 30));
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Id, "b-1");
  EXPECT_EQ(P->Status, "ok");
  EXPECT_TRUE(P->BatchDone);
  EXPECT_EQ(P->BatchRequested, 32u);
  EXPECT_EQ(P->BatchCompleted, 30u);
  // Ordinary responses are not batch_done frames.
  auto E = parseResponse(okSimpleResponse("x", nullptr, ""));
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_FALSE(E->BatchDone);
}

TEST(BatchProtocol, CheckExpectIsCacheKeyMaterial) {
  EvalRequest Q;
  Q.Name = "t";
  Q.Source = batchSource(0);
  Q.Policies = {mem::MemoryPolicy::defacto()};
  std::string K0 = cacheKeyMaterial(Q);
  Q.CheckExpect = true;
  EXPECT_NE(cacheKeyMaterial(Q), K0)
      << "verdicts change the report bytes, so check_expect must key";
  Q.CheckExpect = false;
  Q.Frontend.CoreSimplify = false;
  EXPECT_NE(cacheKeyMaterial(Q), K0) << "frontend options must key";
}

//===----------------------------------------------------------------------===//
// Batch determinism: one matrix, one golden
//===----------------------------------------------------------------------===//

namespace {

std::string goldenPath() {
  return std::string(CERB_SOURCE_DIR) + "/tests/goldens/serve_batch.golden";
}

/// Runs the canonical 32-request suite as one callBatch and returns the
/// raw reply frame per request id.
std::map<std::string, std::string> batchReplies(unsigned Threads,
                                                unsigned Depth,
                                                bool Shuffle) {
  DaemonFixture F(Threads);
  EXPECT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  std::vector<EvalRequest> Reqs = suite32();
  if (Shuffle) { // deterministic permutation, distinct from identity
    std::reverse(Reqs.begin(), Reqs.end());
    std::rotate(Reqs.begin(), Reqs.begin() + 7, Reqs.end());
  }
  BatchOptions BO;
  BO.PipelineDepth = Depth;
  auto R = C.callBatch(Reqs, BO);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.error().Message);
  std::map<std::string, std::string> ById;
  if (R)
    for (size_t I = 0; I < Reqs.size(); ++I) {
      EXPECT_EQ(R->Responses[I].Id, Reqs[I].Id);
      EXPECT_EQ(R->Responses[I].Status, "ok");
      ById[Reqs[I].Id] = R->Raw[I];
    }
  F.drain();
  return ById;
}

} // namespace

TEST(BatchDeterminism, RepliesSurviveJobsOrderDepthAndMatchSequentialEval) {
  // Baseline: 32 sequential eval calls against a single-threaded daemon.
  std::map<std::string, std::string> Sequential;
  {
    DaemonFixture F(/*Threads=*/1);
    ASSERT_TRUE(static_cast<bool>(F.D->start()));
    Client C = F.client();
    for (const EvalRequest &Q : suite32()) {
      auto Raw = C.call(serializeEvalRequest(Q));
      ASSERT_TRUE(static_cast<bool>(Raw));
      auto P = parseResponse(*Raw);
      ASSERT_TRUE(static_cast<bool>(P));
      ASSERT_EQ(P->Status, "ok") << P->Error;
      Sequential[Q.Id] = *Raw;
    }
    F.drain();
    // The shared-source suite exercised the compile cache: 32 requests x 2
    // policy jobs = 64 lookups over 4 distinct sources, everything reused.
    exec::CompileCacheStats CS = F.D->compileCache().stats();
    EXPECT_EQ(CS.Misses, 4u);
    EXPECT_EQ(CS.Hits, 60u);
  }
  ASSERT_EQ(Sequential.size(), 32u);

  // The matrix: every cell must reproduce the sequential bytes exactly.
  struct Cell {
    unsigned Threads, Depth;
    bool Shuffle;
    const char *What;
  };
  const Cell Matrix[] = {
      {1, 0, false, "jobs=1 one frame"},
      {4, 0, false, "jobs=4 one frame"},
      {4, 1, false, "jobs=4 depth=1 (request-per-frame pipeline)"},
      {2, 5, false, "jobs=2 depth=5 (uneven chunks)"},
      {4, 0, true, "jobs=4 shuffled order"},
      {1, 3, true, "jobs=1 depth=3 shuffled"},
  };
  for (const Cell &M : Matrix) {
    auto Replies = batchReplies(M.Threads, M.Depth, M.Shuffle);
    ASSERT_EQ(Replies.size(), 32u) << M.What;
    for (const auto &[Id, Frame] : Sequential)
      EXPECT_EQ(Replies.at(Id), Frame)
          << M.What << ": request " << Id
          << " must be byte-identical to its sequential eval reply";
  }

  // Golden gate: the per-id reply fingerprints are also pinned across
  // sessions, so semantics or serialization drift cannot hide behind the
  // internal-consistency checks above.
  std::map<std::string, std::string> Actual;
  for (const auto &[Id, Frame] : Sequential)
    Actual[Id] = hex64(fnv64(Frame));

  if (std::getenv("CERB_UPDATE_GOLDENS")) {
    std::ofstream Out(goldenPath(), std::ios::trunc);
    Out << "# Per-request FNV-1a fingerprints of cerb-serve/1 batch reply "
           "frames\n"
        << "# for the canonical 32-request suite (tests/test_serve_batch"
           ".cpp).\n"
        << "# Regenerate: CERB_UPDATE_GOLDENS=1 "
           "./build/tests/cerb_serve_batch_tests\n";
    for (const auto &[Id, Fp] : Actual)
      Out << Id << " " << Fp << "\n";
    SUCCEED() << "goldens regenerated";
    return;
  }

  std::ifstream In(goldenPath());
  ASSERT_TRUE(In.good()) << "missing " << goldenPath()
                         << " (regenerate: CERB_UPDATE_GOLDENS=1 "
                            "./build/tests/cerb_serve_batch_tests)";
  std::map<std::string, std::string> Expected;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    std::istringstream LS(Line);
    std::string Id, Fp;
    LS >> Id >> Fp;
    Expected[Id] = Fp;
  }
  EXPECT_EQ(Actual, Expected)
      << "batch reply bytes drifted from the golden fingerprints "
         "(intentional? CERB_UPDATE_GOLDENS=1)";
}

TEST(BatchDeterminism, WarmRepeatIsByteIdentical) {
  DaemonFixture F(/*Threads=*/4);
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  std::vector<EvalRequest> Reqs = suite32();
  auto Cold = C.callBatch(Reqs);
  ASSERT_TRUE(static_cast<bool>(Cold)) << Cold.error().Message;
  auto Warm = C.callBatch(Reqs);
  ASSERT_TRUE(static_cast<bool>(Warm)) << Warm.error().Message;
  EXPECT_EQ(Cold->Raw, Warm->Raw)
      << "a result-cache hit must replay the stored bytes";
  // Warm round: every request was answered from the result cache, so the
  // compile cache saw no new work.
  CacheStats RS = F.D->cache().stats();
  EXPECT_EQ(RS.Misses, 32u);
  EXPECT_EQ(RS.MemoryHits, 32u);
  // Cold already did all the compile-cache traffic there will ever be: 32
  // requests x 2 policy jobs = 64 lookups. Warm adds zero.
  exec::CompileCacheStats CS = F.D->compileCache().stats();
  EXPECT_EQ(CS.Misses + CS.Hits, 64u)
      << "a result-cache hit must not touch the compile cache";
  F.drain();
}

//===----------------------------------------------------------------------===//
// Admission, fan-out accounting, and retries
//===----------------------------------------------------------------------===//

TEST(BatchDaemon, WholeBatchAdmissionIsAllOrNothing) {
  DaemonFixture F(/*Threads=*/2, /*MaxQueue=*/8);
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();

  // 9 requests against an 8-slot queue: one `overloaded` frame for the
  // whole batch, no partial admission, nothing left in flight.
  std::vector<EvalRequest> Reqs;
  for (unsigned I = 0; I < 9; ++I) {
    EvalRequest Q;
    Q.Id = "o" + std::to_string(I);
    Q.Source = batchSource(I);
    Q.Policies = {mem::MemoryPolicy::defacto()};
    Reqs.push_back(std::move(Q));
  }
  auto Raw = C.call(serializeBatchRequest("big", Reqs));
  ASSERT_TRUE(static_cast<bool>(Raw));
  auto P = parseResponse(*Raw);
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Status, "overloaded");
  EXPECT_EQ(P->Id, "big");
  EXPECT_EQ(F.D->snapshot().Overloaded, 1u)
      << "one rejection event for the whole batch, not nine";
  EXPECT_EQ(F.D->snapshot().InFlight, 0u);

  // An 8-request batch fits exactly.
  Reqs.pop_back();
  auto Ok = C.callBatch(Reqs);
  ASSERT_TRUE(static_cast<bool>(Ok)) << Ok.error().Message;
  EXPECT_EQ(F.D->snapshot().Admitted, 8u);
  F.drain();
}

TEST(BatchDaemon, BatchDoneTerminatesTheReplyStream) {
  // Drive the wire by hand: one batch frame in, N eval frames out in
  // completion order, then exactly one batch_done terminator — last on the
  // stream, carrying the batch id and the requested/completed tally.
  DaemonFixture F(/*Threads=*/4);
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  auto Sock = net::connectUnix(F.T.str("d.sock"));
  ASSERT_TRUE(static_cast<bool>(Sock));
  std::vector<EvalRequest> Reqs = suite32();
  Reqs.resize(4);
  ASSERT_TRUE(net::writeFrame(Sock->get(),
                              serializeBatchRequest("done-check", Reqs)));

  std::vector<std::string> SeenIds;
  bool SawDone = false;
  for (unsigned Frames = 0; Frames < 5; ++Frames) {
    std::string Frame;
    ASSERT_EQ(net::readFrame(Sock->get(), Frame), 1);
    auto P = parseResponse(Frame);
    ASSERT_TRUE(static_cast<bool>(P));
    ASSERT_FALSE(SawDone) << "no frame may follow batch_done";
    if (P->BatchDone) {
      SawDone = true;
      EXPECT_EQ(P->Id, "done-check");
      EXPECT_EQ(P->BatchRequested, 4u);
      EXPECT_EQ(P->BatchCompleted, 4u);
      continue;
    }
    EXPECT_EQ(P->Status, "ok") << P->Error;
    SeenIds.push_back(P->Id);
  }
  EXPECT_TRUE(SawDone);
  std::sort(SeenIds.begin(), SeenIds.end());
  EXPECT_EQ(SeenIds, (std::vector<std::string>{"q0", "q1", "q2", "q3"}))
      << "each request id must be answered exactly once";
  Sock->reset();
  F.drain();
}

TEST(BatchClient, RejectsBadIdSetsClientSide) {
  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  std::vector<EvalRequest> Reqs = suite32();
  Reqs[5].Id = Reqs[4].Id;
  auto Dup = C.callBatch(Reqs);
  ASSERT_FALSE(static_cast<bool>(Dup));
  EXPECT_NE(Dup.error().Message.find("duplicate"), std::string::npos);
  Reqs = suite32();
  Reqs[0].Id.clear();
  auto Empty = C.callBatch(Reqs);
  ASSERT_FALSE(static_cast<bool>(Empty));
  EXPECT_NE(Empty.error().Message.find("empty id"), std::string::npos);
  EXPECT_FALSE(static_cast<bool>(C.callBatch({})));
  F.drain();
}

TEST(BatchClient, RetryableRejectionExhaustsAttemptsCleanly) {
  // A zero-slot queue rejects every batch as `overloaded` (retryable):
  // callBatch must burn its attempts and surface the status, not hang or
  // mislabel it terminal.
  DaemonFixture F(/*Threads=*/1, /*MaxQueue=*/0);
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  RetryPolicy RP;
  RP.MaxAttempts = 3;
  RP.BaseDelayMs = 1;
  RP.MaxDelayMs = 2;
  Client C = F.client(RP);
  std::vector<EvalRequest> Reqs = suite32();
  Reqs.resize(2);
  auto R = C.callBatch(Reqs);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().Message.find("overloaded"), std::string::npos)
      << R.error().Message;
  EXPECT_NE(R.error().Message.find("3 attempts"), std::string::npos)
      << R.error().Message;
  F.drain();
}

TEST(BatchClient, TornStreamRetriesOnlyTheMissingIds) {
  // Tear the reply stream once, mid-batch, with a deterministic one-shot
  // read fault. The retry must resend only the ids that never arrived and
  // the final result must be complete and byte-identical to a fault-free
  // run. (The fault site is process-wide, so the shot may land on either
  // side of the socket — both paths must funnel into the same retry.)
  std::vector<EvalRequest> Reqs = suite32();
  Reqs.resize(8);

  std::map<std::string, std::string> Golden;
  {
    DaemonFixture F;
    ASSERT_TRUE(static_cast<bool>(F.D->start()));
    Client C = F.client();
    auto R = C.callBatch(Reqs);
    ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
    for (size_t I = 0; I < Reqs.size(); ++I)
      Golden[Reqs[I].Id] = R->Raw[I];
    F.drain();
  }

  DaemonFixture F;
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  RetryPolicy RP;
  RP.MaxAttempts = 4;
  RP.BaseDelayMs = 1;
  RP.MaxDelayMs = 4;
  RP.CallTimeoutMs = 5000;
  Client C = F.client(RP);
  {
    fault::FaultSpec S;
    S.Site = "socket.read";
    S.Nth = 6; // somewhere inside the reply stream
    S.MaxShots = 1;
    S.Err = ECONNRESET;
    fault::ScopedFaults Faults(7, {S});
    auto R = C.callBatch(Reqs);
    ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;
    for (size_t I = 0; I < Reqs.size(); ++I) {
      EXPECT_EQ(R->Responses[I].Id, Reqs[I].Id)
          << "ids must complete exactly once, in request order";
      EXPECT_EQ(R->Raw[I], Golden.at(Reqs[I].Id))
          << "a fault-retried reply must still be byte-identical";
    }
  }
  F.drain();
}

TEST(BatchDaemon, StatsExposeCompileCacheCounters) {
  DaemonFixture F(/*Threads=*/2, /*MaxQueue=*/64, /*CompileCacheMb=*/1);
  ASSERT_TRUE(static_cast<bool>(F.D->start()));
  Client C = F.client();
  auto R = C.callBatch(suite32());
  ASSERT_TRUE(static_cast<bool>(R)) << R.error().Message;

  auto Raw = C.call(serializeSimpleRequest(Op::Stats, "s"));
  ASSERT_TRUE(static_cast<bool>(Raw));
  auto Doc = json::parse(*Raw);
  ASSERT_TRUE(Doc.has_value());
  const json::Value *CC = Doc->get("stats")->get("compile_cache");
  ASSERT_NE(CC, nullptr);
  EXPECT_EQ(CC->get("misses")->asU64(), 4u);
  EXPECT_EQ(CC->get("hits")->asU64(), 60u);
  EXPECT_EQ(CC->get("budget_bytes")->asU64(), 1024u * 1024u);
  EXPECT_EQ(CC->get("evictions")->asU64(), 0u)
      << "4 tiny sources sit far under a 1 MiB budget";
  EXPECT_EQ(CC->get("entries")->asU64(), 4u);
  EXPECT_GT(CC->get("bytes")->asU64(), 0u);
  F.drain();
}
