//===-- tests/test_seqgraph.cpp - the §5.6 sequencing graph ---------------===//

#include "core/SeqGraph.h"
#include "exec/Pipeline.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::core;

namespace {

/// Builds the graph of `main` of the given program.
SeqGraph graphOf(const char *Src, CoreProgram &ProgOut) {
  auto P = exec::compile(Src);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().str());
  ProgOut = std::move(*P);
  for (const auto &[Id, Proc] : ProgOut.Procs)
    if (ProgOut.Syms.nameOf(Proc.Name) == "main")
      return buildSeqGraph(*Proc.Body, ProgOut.Syms);
  ADD_FAILURE() << "no main";
  return SeqGraph{};
}

/// Finds the single node whose label is \p L.
unsigned node(const SeqGraph &G, std::string_view L) {
  unsigned Found = ~0u;
  for (const SeqNode &N : G.Nodes)
    if (N.Label == L) {
      EXPECT_EQ(Found, ~0u) << "duplicate label " << L;
      Found = N.Id;
    }
  EXPECT_NE(Found, ~0u) << "no node " << L;
  return Found;
}

} // namespace

TEST(SeqGraph, Section56Example) {
  // The paper's figure for  w = x++ + f(z,2);
  CoreProgram P;
  SeqGraph G = graphOf(R"(
int w, x = 10, z = 5;
int f(int a, int b) { return a + b; }
int main(void) {
  w = x++ + f(z, 2);
  return 0;
}
)",
                       P);

  unsigned RX = node(G, "R x");
  unsigned WX = node(G, "W x");
  unsigned RZ = node(G, "R z");
  unsigned F = node(G, "f(...)");
  unsigned WW = node(G, "W w");

  // (3) the read and write of x are atomic.
  EXPECT_TRUE(G.hasEdge(RX, WX, SeqEdgeKind::Atomic));
  // (2) the read of x and the body of f() are sequenced before W w.
  EXPECT_TRUE(G.sequencedBefore(RX, WW));
  EXPECT_TRUE(G.sequencedBefore(F, WW));
  // (4) the argument read R z happens before the call.
  EXPECT_TRUE(G.sequencedBefore(RZ, F));
  // (1) the operands of + are unsequenced: R x vs R z.
  EXPECT_TRUE(G.unsequenced(RX, RZ));
  // (6) f's body is *indeterminately* (not un-) sequenced with the x
  // accesses: dotted edges, so not "unsequenced".
  EXPECT_TRUE(G.hasEdge(RX, F, SeqEdgeKind::Indeterminate) ||
              G.hasEdge(F, RX, SeqEdgeKind::Indeterminate));
  EXPECT_FALSE(G.unsequenced(RX, F));
  // The updating store is a side effect: negative polarity.
  for (const SeqNode &N : G.Nodes)
    if (N.Id == WX)
      EXPECT_TRUE(N.Negative);
}

TEST(SeqGraph, WeakSequencingLeavesNegativeUnordered) {
  // y = (x = 1);  — the value computations are ordered, but the stores
  // are side effects: W x is NOT sequenced before W y.
  CoreProgram P;
  SeqGraph G = graphOf(R"(
int x, y;
int main(void) {
  y = (x = 1);
  return 0;
}
)",
                       P);
  unsigned WX = node(G, "W x");
  unsigned WY = node(G, "W y");
  EXPECT_FALSE(G.sequencedBefore(WX, WY));
  EXPECT_FALSE(G.sequencedBefore(WY, WX));
  EXPECT_TRUE(G.unsequenced(WX, WY)); // harmless: different objects
}

TEST(SeqGraph, StatementsAreStronglyOrdered) {
  CoreProgram P;
  SeqGraph G = graphOf(R"(
int x, y;
int main(void) {
  x = 1;
  y = 2;
  return 0;
}
)",
                       P);
  EXPECT_TRUE(G.sequencedBefore(node(G, "W x"), node(G, "W y")));
}

TEST(SeqGraph, UnseqOperandsUnordered) {
  CoreProgram P;
  SeqGraph G = graphOf(R"(
int a, b, r;
int main(void) {
  r = a + b;
  return 0;
}
)",
                       P);
  unsigned RA = node(G, "R a");
  unsigned RB = node(G, "R b");
  EXPECT_TRUE(G.unsequenced(RA, RB));
  EXPECT_TRUE(G.sequencedBefore(RA, node(G, "W r")));
}

TEST(SeqGraph, CreateAndKillNodesAppear) {
  CoreProgram P;
  SeqGraph G = graphOf(R"(
int main(void) {
  int t = 1;
  return t;
}
)",
                       P);
  unsigned C = node(G, "C t");
  bool SawKill = false;
  for (const SeqNode &N : G.Nodes)
    if (N.Kind == ActionKind::Kill) {
      SawKill = true;
      EXPECT_TRUE(G.sequencedBefore(C, N.Id));
    }
  EXPECT_TRUE(SawKill);
}

TEST(SeqGraph, DotOutputWellFormed) {
  CoreProgram P;
  SeqGraph G = graphOf("int x; int main(void){ x = 1; return 0; }", P);
  std::string Dot = G.dot();
  EXPECT_NE(Dot.find("digraph seq {"), std::string::npos);
  EXPECT_NE(Dot.find("W x"), std::string::npos);
  EXPECT_EQ(Dot.back(), '\n');
}
