//===-- tests/test_fuzz.cpp - fuzz campaign, ddmin reducer, chunking ------===//
//
// The fuzz subsystem's contracts: the generator is deterministic and its
// chunk list describes exactly the removable structure; ddmin returns a
// 1-minimal result and never a candidate that does not reproduce the
// failure; the campaign report is byte-identical across worker counts and
// across resume; differentialTest honors a wall-clock deadline so one
// pathological program cannot stall a campaign worker.
//
//===----------------------------------------------------------------------===//

#include "csmith/Differential.h"
#include "exec/Pipeline.h"
#include "fuzz/Campaign.h"
#include "fuzz/Reducer.h"
#include "support/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <thread>

using namespace cerb;
using csmith::SourceChunk;

//===----------------------------------------------------------------------===//
// Generator chunk structure
//===----------------------------------------------------------------------===//

TEST(GeneratorChunks, SameSeedIsByteIdentical) {
  csmith::GenOptions G;
  for (uint64_t Seed : {1u, 7u, 42u}) {
    G.Seed = Seed;
    csmith::GeneratedProgram A = csmith::generateProgramWithChunks(G);
    csmith::GeneratedProgram B = csmith::generateProgramWithChunks(G);
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    EXPECT_EQ(A.Chunks.size(), B.Chunks.size()) << "seed " << Seed;
    // The chunk-reporting path must not perturb the program itself.
    EXPECT_EQ(A.Source, csmith::generateProgram(G)) << "seed " << Seed;
  }
}

TEST(GeneratorChunks, ChunksAreAscendingDisjointAndInBounds) {
  csmith::GenOptions G;
  G.Seed = 3;
  csmith::GeneratedProgram P = csmith::generateProgramWithChunks(G);
  ASSERT_FALSE(P.Chunks.empty());
  size_t Prev = 0;
  for (const SourceChunk &C : P.Chunks) {
    EXPECT_LE(Prev, C.Begin);
    EXPECT_LT(C.Begin, C.End);
    EXPECT_LE(C.End, P.Source.size());
    Prev = C.End;
  }
}

TEST(GeneratorChunks, SpliceKeepAllIsIdentity) {
  csmith::GenOptions G;
  G.Seed = 11;
  csmith::GeneratedProgram P = csmith::generateProgramWithChunks(G);
  std::vector<size_t> All(P.Chunks.size());
  for (size_t I = 0; I < All.size(); ++I)
    All[I] = I;
  EXPECT_EQ(fuzz::spliceChunks(P.Source, P.Chunks, All), P.Source);
}

TEST(GeneratorChunks, SingleChunkRemovalsKeepBracesBalanced) {
  csmith::GenOptions G;
  G.Seed = 5;
  csmith::GeneratedProgram P = csmith::generateProgramWithChunks(G);
  auto BraceBalance = [](const std::string &S) {
    long B = 0;
    for (char C : S)
      B += C == '{' ? 1 : C == '}' ? -1 : 0;
    return B;
  };
  ASSERT_EQ(BraceBalance(P.Source), 0);
  for (size_t Drop = 0; Drop < P.Chunks.size(); ++Drop) {
    std::vector<size_t> Keep;
    for (size_t I = 0; I < P.Chunks.size(); ++I)
      if (I != Drop)
        Keep.push_back(I);
    EXPECT_EQ(BraceBalance(fuzz::spliceChunks(P.Source, P.Chunks, Keep)), 0)
        << "dropping chunk " << Drop;
  }
}

TEST(GeneratorUBFree, DefactoAndStrictIso) {
  // The §6 premise: generated programs are UB-free, so any non-Exit
  // outcome is a generator or semantics bug.
  csmith::GenOptions G;
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    G.Seed = Seed;
    std::string Src = csmith::generateProgram(G);
    for (const mem::MemoryPolicy &P :
         {mem::MemoryPolicy::defacto(), mem::MemoryPolicy::strictIso()}) {
      exec::RunOptions Opts;
      Opts.Policy = P;
      auto R = exec::evaluateOnce(Src, Opts);
      ASSERT_TRUE(static_cast<bool>(R))
          << "seed " << Seed << " under " << P.Name << ": "
          << R.error().str();
      EXPECT_EQ(R->Kind, exec::OutcomeKind::Exit)
          << "seed " << Seed << " under " << P.Name << ": " << R->str();
    }
  }
}

//===----------------------------------------------------------------------===//
// chunkSource: structure recovery from arbitrary C-like text
//===----------------------------------------------------------------------===//

namespace {

const char *HandwrittenSource = "#include <stdio.h>\n"
                                "int a = 1;\n"
                                "int b = 2;\n"
                                "int f(void) {\n"
                                "  return a;\n"
                                "}\n"
                                "int main(void) {\n"
                                "  int x = f();\n"
                                "  if (x) {\n"
                                "    x = x + b;\n"
                                "  }\n"
                                "  printf(\"%d\\n\", x);\n"
                                "  return 0;\n"
                                "}\n";

size_t countKind(const std::vector<SourceChunk> &Cs, SourceChunk::Kind K) {
  size_t N = 0;
  for (const SourceChunk &C : Cs)
    N += C.ChunkKind == K;
  return N;
}

} // namespace

TEST(ChunkSource, RecoversGlobalsFunctionsAndMainStatements) {
  std::vector<SourceChunk> Cs = fuzz::chunkSource(HandwrittenSource);
  EXPECT_EQ(countKind(Cs, SourceChunk::Kind::Global), 2u);
  EXPECT_EQ(countKind(Cs, SourceChunk::Kind::Function), 1u);
  EXPECT_EQ(countKind(Cs, SourceChunk::Kind::Statement), 4u);
  // The preprocessor line and main's skeleton are never chunked.
  std::vector<size_t> None;
  std::string Skeleton =
      fuzz::spliceChunks(HandwrittenSource, Cs, None);
  EXPECT_NE(Skeleton.find("#include"), std::string::npos);
  EXPECT_NE(Skeleton.find("int main(void)"), std::string::npos);
}

TEST(ChunkSource, MatchesGeneratorOwnStructure) {
  // The recovered segmentation of a generated program must be splice-safe
  // (identity on keep-all), like the generator-reported one.
  csmith::GenOptions G;
  G.Seed = 9;
  std::string Src = csmith::generateProgram(G);
  std::vector<SourceChunk> Cs = fuzz::chunkSource(Src);
  ASSERT_FALSE(Cs.empty());
  std::vector<size_t> All(Cs.size());
  for (size_t I = 0; I < All.size(); ++I)
    All[I] = I;
  EXPECT_EQ(fuzz::spliceChunks(Src, Cs, All), Src);
}

//===----------------------------------------------------------------------===//
// ddmin
//===----------------------------------------------------------------------===//

namespace {

/// A synthetic reduction universe: source "0123...", one chunk per byte.
struct CharUniverse {
  std::string Source;
  std::vector<SourceChunk> Chunks;
  explicit CharUniverse(unsigned N) {
    for (unsigned I = 0; I < N; ++I) {
      Source += static_cast<char>('a' + (I % 26));
      Chunks.push_back(SourceChunk{SourceChunk::Kind::Statement, I, I + 1});
    }
  }
};

} // namespace

TEST(Ddmin, FindsOneMinimalSubset) {
  CharUniverse U(16);
  // Fails iff both 'd' (index 3) and 'h' (index 7) survive.
  auto StillFails = [](const std::string &S) {
    return S.find('d') != std::string::npos &&
           S.find('h') != std::string::npos;
  };
  fuzz::ReduceResult R = fuzz::reduce(U.Source, U.Chunks, StillFails);
  EXPECT_EQ(R.Reduced, "dh");
  EXPECT_EQ(R.ChunksKept, 2u);
  EXPECT_TRUE(R.OneMinimal);
  EXPECT_FALSE(R.BudgetHit);
  EXPECT_FALSE(R.DeadlineHit);
  EXPECT_TRUE(StillFails(R.Reduced));
}

TEST(Ddmin, NeverReturnsNonFailingCandidate) {
  // Whatever the budget, the result must satisfy the predicate: an
  // over-budget reduction keeps the last known-failing configuration.
  CharUniverse U(24);
  auto StillFails = [](const std::string &S) {
    return S.find('d') != std::string::npos &&
           S.find('h') != std::string::npos &&
           S.find('p') != std::string::npos;
  };
  for (uint64_t Budget : {1u, 2u, 3u, 5u, 8u, 1000u}) {
    fuzz::ReduceOptions Opts;
    Opts.MaxTests = Budget;
    fuzz::ReduceResult R = fuzz::reduce(U.Source, U.Chunks, StillFails, Opts);
    EXPECT_TRUE(StillFails(R.Reduced)) << "budget " << Budget;
    EXPECT_LE(R.TestsRun, Budget) << "budget " << Budget;
  }
}

TEST(Ddmin, PassingInputIsReturnedUntouched) {
  CharUniverse U(8);
  uint64_t Calls = 0;
  auto StillFails = [&](const std::string &) {
    ++Calls;
    return false;
  };
  fuzz::ReduceResult R = fuzz::reduce(U.Source, U.Chunks, StillFails);
  EXPECT_EQ(R.Reduced, U.Source);
  EXPECT_EQ(R.TestsRun, 1u);
  EXPECT_EQ(Calls, 1u);
  EXPECT_FALSE(R.OneMinimal);
}

TEST(Ddmin, SingleNeededChunkReachesSizeOne) {
  CharUniverse U(13);
  auto StillFails = [](const std::string &S) {
    return S.find('g') != std::string::npos;
  };
  fuzz::ReduceResult R = fuzz::reduce(U.Source, U.Chunks, StillFails);
  EXPECT_EQ(R.Reduced, "g");
  EXPECT_TRUE(R.OneMinimal);
}

TEST(Ddmin, EmptyConfigurationIsReachable) {
  // When the skeleton alone still fails, everything is removable.
  CharUniverse U(6);
  auto StillFails = [](const std::string &) { return true; };
  fuzz::ReduceResult R = fuzz::reduce(U.Source, U.Chunks, StillFails);
  EXPECT_EQ(R.Reduced, "");
  EXPECT_EQ(R.ChunksKept, 0u);
  EXPECT_TRUE(R.OneMinimal);
}

TEST(Ddmin, DeadlineBackstopReturnsBestSoFar) {
  CharUniverse U(20);
  auto StillFails = [](const std::string &S) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return S.find('d') != std::string::npos;
  };
  fuzz::ReduceOptions Opts;
  Opts.DeadlineMs = 1;
  fuzz::ReduceResult R = fuzz::reduce(U.Source, U.Chunks, StillFails, Opts);
  EXPECT_TRUE(R.DeadlineHit);
  EXPECT_FALSE(R.OneMinimal);
  EXPECT_TRUE(StillFails(R.Reduced));
}

TEST(Ddmin, MemoizesRepeatedCandidates) {
  CharUniverse U(12);
  std::set<std::string> Seen;
  uint64_t Calls = 0;
  auto StillFails = [&](const std::string &S) {
    ++Calls;
    EXPECT_TRUE(Seen.insert(S).second)
        << "predicate re-evaluated on an already-tested candidate";
    return S.find('c') != std::string::npos &&
           S.find('j') != std::string::npos;
  };
  fuzz::ReduceResult R = fuzz::reduce(U.Source, U.Chunks, StillFails);
  EXPECT_EQ(R.TestsRun, Calls);
  EXPECT_EQ(R.Reduced, "cj");
}

//===----------------------------------------------------------------------===//
// Triage signatures
//===----------------------------------------------------------------------===//

TEST(DiffSignature, NormalizesLineNumbersAndValues) {
  csmith::DiffResult A, B;
  A.Status = B.Status = csmith::DiffStatus::OursFail;
  A.Stage = B.Stage = csmith::DiffStage::Dynamic;
  A.UB = B.UB = mem::UBKind::AccessOutOfBounds;
  A.Detail = "ub at line 12, offset 345: out of bounds";
  B.Detail = "ub at line 7, offset 6: out of bounds";
  EXPECT_EQ(csmith::diffSignature(A), csmith::diffSignature(B));

  // ...but a different divergence shape is a different bucket.
  csmith::DiffResult C = A;
  C.Detail = "ub at line 12, offset 345: null pointer";
  EXPECT_NE(csmith::diffSignature(A), csmith::diffSignature(C));
  csmith::DiffResult D = A;
  D.Status = csmith::DiffStatus::Mismatch;
  EXPECT_NE(csmith::diffSignature(A), csmith::diffSignature(D));
}

TEST(DiffSignature, StatusNamesRoundTrip) {
  for (csmith::DiffStatus S :
       {csmith::DiffStatus::Agree, csmith::DiffStatus::Mismatch,
        csmith::DiffStatus::OursTimeout, csmith::DiffStatus::OursFail,
        csmith::DiffStatus::OracleFail}) {
    auto Back = csmith::diffStatusByName(csmith::diffStatusName(S));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, S);
  }
  EXPECT_FALSE(csmith::diffStatusByName("nonsense").has_value());
}

//===----------------------------------------------------------------------===//
// Wall-clock deadline (the campaign-worker stall guard)
//===----------------------------------------------------------------------===//

TEST(DiffDeadline, PathologicalProgramTimesOutInsteadOfStalling) {
  // An unbounded loop with an astronomically large step budget: only the
  // ExecLimits::Deadline plumbing can stop it promptly. Our side fails
  // first, so no host compiler is needed.
  const char *Spin = "int main(void) {\n"
                     "  unsigned x = 0u;\n"
                     "  while (1u) { x = x + 1u; }\n"
                     "  return 0;\n"
                     "}\n";
  csmith::DiffOptions O;
  O.StepBudget = ~0ull;
  O.DeadlineMs = 100;
  auto T0 = std::chrono::steady_clock::now();
  csmith::DiffResult R = csmith::differentialTest(Spin, O);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  EXPECT_EQ(R.Status, csmith::DiffStatus::OursTimeout);
  EXPECT_LT(Ms, 5000.0) << "deadline did not bound the run";
}

//===----------------------------------------------------------------------===//
// JSON parser (the --resume reader)
//===----------------------------------------------------------------------===//

TEST(Json, ParsesScalarsArraysAndObjects) {
  auto V = json::parse(
      R"({"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}})");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->get("a")->asU64(), 1u);
  ASSERT_EQ(V->get("b")->Arr.size(), 3u);
  EXPECT_TRUE(V->get("b")->Arr[0].asBool());
  EXPECT_TRUE(V->get("b")->Arr[1].isNull());
  EXPECT_EQ(V->get("b")->Arr[2].asString(), "x\ny");
  EXPECT_EQ(V->get("c")->get("d")->asDouble(), -2.5);
  EXPECT_EQ(V->get("missing"), nullptr);
}

TEST(Json, RejectsMalformedDocuments) {
  std::string Err;
  EXPECT_FALSE(json::parse("{", &Err).has_value());
  EXPECT_FALSE(json::parse("[1,]", &Err).has_value());
  EXPECT_FALSE(json::parse("{} trailing", &Err).has_value());
  EXPECT_FALSE(json::parse("", &Err).has_value());
}

TEST(Json, RoundTripsReportEscapes) {
  // The escapes our serializers emit must read back verbatim.
  auto V = json::parse(R"({"s": "a\"b\\c\nd\te"})");
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->get("s")->asString(), "a\"b\\c\nd\te");
}

//===----------------------------------------------------------------------===//
// Campaign determinism, resume, report round-trip
//===----------------------------------------------------------------------===//

namespace {

fuzz::CampaignOptions smallCampaign(uint64_t First, uint64_t Last) {
  fuzz::CampaignOptions C;
  C.FirstSeed = First;
  C.LastSeed = Last;
  C.Gen.Size = 6; // small programs keep the host-compiler runs cheap
  C.TestDeadlineMs = 10'000;
  return C;
}

} // namespace

TEST(Campaign, ReportIsByteIdenticalAcrossJobs) {
  if (!csmith::oracleAvailable())
    GTEST_SKIP() << "no host C compiler";
  fuzz::CampaignOptions C = smallCampaign(1, 8);
  C.Jobs = 1;
  fuzz::CampaignResult Serial = fuzz::runCampaign(C);
  C.Jobs = 4;
  fuzz::CampaignResult Parallel = fuzz::runCampaign(C);
  EXPECT_EQ(fuzz::toJson(Serial, C), fuzz::toJson(Parallel, C));
  EXPECT_EQ(Serial.Stats.Total, 8u);
}

TEST(Campaign, ResumeAdoptsFinishedSeedsAndExtends) {
  if (!csmith::oracleAvailable())
    GTEST_SKIP() << "no host C compiler";
  fuzz::CampaignOptions C4 = smallCampaign(1, 4);
  fuzz::CampaignResult First = fuzz::runCampaign(C4);
  std::string Report = fuzz::toJson(First, C4);

  std::vector<fuzz::CampaignEntry> Previous;
  std::string Err;
  ASSERT_TRUE(fuzz::loadCampaignEntries(Report, Previous, &Err)) << Err;
  ASSERT_EQ(Previous.size(), 4u);

  fuzz::CampaignOptions C6 = smallCampaign(1, 6);
  fuzz::CampaignResult Resumed = fuzz::runCampaign(C6, &Previous);
  EXPECT_EQ(Resumed.Stats.Total, 6u);
  EXPECT_EQ(Resumed.Stats.ResumedEntries, 4u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_TRUE(Resumed.Entries[I].Resumed) << "seed " << I + 1;

  // The default (no-timings) report hides resume attribution, so a
  // resumed campaign and a fresh one serialize identically.
  fuzz::CampaignResult Fresh = fuzz::runCampaign(C6);
  EXPECT_EQ(fuzz::toJson(Resumed, C6), fuzz::toJson(Fresh, C6));
}

TEST(Campaign, TriageBucketsAndCorpusFromAdoptedEntries) {
  // Entirely oracle-free: every seed is adopted from a previous report,
  // so this exercises triage (dedup by signature, smallest seed as
  // representative) and corpus persistence in isolation.
  auto MakeEntry = [](uint64_t Seed, const std::string &Sig,
                      const std::string &Reduced) {
    fuzz::CampaignEntry E;
    E.Seed = Seed;
    E.Policy = "defacto";
    E.Status = csmith::DiffStatus::OursFail;
    E.Signature = Sig;
    E.SourceBytes = 100;
    E.ReducedBytes = Reduced.size();
    E.Reduced = Reduced;
    E.OneMinimal = true;
    return E;
  };
  const std::string SigA = "fail|dynamic|Access_null_pointer|00000000000000aa";
  const std::string SigB = "fail|frontend|-|00000000000000bb";
  std::vector<fuzz::CampaignEntry> Previous = {
      MakeEntry(3, SigA, "int main(void) { return *(int *)0; }\n"),
      MakeEntry(1, SigB, "int main(void) { return x; }\n"),
      MakeEntry(2, SigA, "int main(void) { return *(int *)0; }\n"),
  };

  fuzz::CampaignOptions C;
  C.FirstSeed = 1;
  C.LastSeed = 3;
  C.CorpusDir =
      (std::filesystem::temp_directory_path() / "cerb_fuzz_corpus_test")
          .string();
  std::filesystem::remove_all(C.CorpusDir);
  fuzz::CampaignResult R = fuzz::runCampaign(C, &Previous);

  ASSERT_EQ(R.Buckets.size(), 2u);
  // Buckets sort by key: "fail|dynamic|..." < "fail|frontend|...".
  EXPECT_EQ(R.Buckets[0].Key, SigA);
  EXPECT_EQ(R.Buckets[0].Status, "fail");
  EXPECT_EQ(R.Buckets[0].Stage, "dynamic");
  EXPECT_EQ(R.Buckets[0].UB, "Access_null_pointer");
  EXPECT_EQ(R.Buckets[0].Seeds, (std::vector<uint64_t>{2, 3}));
  EXPECT_EQ(R.Buckets[0].RepresentativeSeed, 2u);
  EXPECT_EQ(R.Buckets[1].Key, SigB);
  EXPECT_EQ(R.Buckets[1].Seeds, (std::vector<uint64_t>{1}));
  EXPECT_EQ(R.Stats.ResumedEntries, 3u);

  for (const fuzz::Bucket &B : R.Buckets) {
    ASSERT_FALSE(B.CorpusFile.empty());
    auto Persisted = exec::readSourceFile(C.CorpusDir + "/" + B.CorpusFile);
    ASSERT_TRUE(static_cast<bool>(Persisted)) << B.CorpusFile;
    EXPECT_NE(Persisted->find(B.Reproducer), std::string::npos)
        << B.CorpusFile << " does not embed the reproducer";
    EXPECT_NE(Persisted->find(B.Key), std::string::npos)
        << B.CorpusFile << " header does not name its bucket";
  }
  std::filesystem::remove_all(C.CorpusDir);
}

TEST(Campaign, LoadRejectsForeignDocuments) {
  std::vector<fuzz::CampaignEntry> Out;
  std::string Err;
  EXPECT_FALSE(fuzz::loadCampaignEntries("not json", Out, &Err));
  EXPECT_FALSE(
      fuzz::loadCampaignEntries(R"({"schema": "other/1", "entries": []})",
                                Out, &Err));
  EXPECT_TRUE(Out.empty());
}
