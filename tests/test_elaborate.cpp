//===-- tests/test_elaborate.cpp - structure of the elaboration -----------===//
//
// White-box tests: the Core the elaboration produces must have the §5
// structure (sequencing forms, polarities, scope annotations, save/run
// loops), independent of its dynamic behaviour.
//
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "exec/Pipeline.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::core;

namespace {

CoreProgram compileOk(const char *Src) {
  auto P = exec::compile(Src);
  EXPECT_TRUE(static_cast<bool>(P)) << (P ? "" : P.error().str());
  return P ? std::move(*P) : CoreProgram{};
}

const Expr &mainBody(const CoreProgram &P) {
  const CoreProc *Proc = P.findProc(P.MainProc);
  EXPECT_NE(Proc, nullptr);
  return *Proc->Body;
}

unsigned countKind(const Expr &E, ExprKind K) {
  unsigned N = E.K == K ? 1 : 0;
  for (const ExprPtr &Kid : E.Kids)
    N += countKind(*Kid, K);
  for (const auto &[Pat, Body] : E.Branches)
    N += countKind(*Body, K);
  return N;
}

unsigned countActions(const Expr &E, ActionKind A,
                      int NegPolarity /* -1 = any */) {
  unsigned N = 0;
  if (E.K == ExprKind::Action && E.Act == A &&
      (NegPolarity < 0 || E.NegPolarity == (NegPolarity == 1)))
    ++N;
  for (const ExprPtr &Kid : E.Kids)
    N += countActions(*Kid, A, NegPolarity);
  for (const auto &[Pat, Body] : E.Branches)
    N += countActions(*Body, A, NegPolarity);
  return N;
}

} // namespace

TEST(Elaborate, AssignmentStoreHasNegativePolarity) {
  // §5.6: the assigning store is a side effect outside the value
  // computation — negative polarity.
  CoreProgram P = compileOk("int x; int main(void){ x = 1; return 0; }");
  const Expr &B = mainBody(P);
  EXPECT_EQ(countActions(B, ActionKind::Store, /*Neg=*/1), 1u);
}

TEST(Elaborate, OperandsAreUnseqUnderLetWeak) {
  CoreProgram P =
      compileOk("int a, b; int main(void){ return a + b; }");
  const Expr &B = mainBody(P);
  EXPECT_GE(countKind(B, ExprKind::Unseq), 1u);
  EXPECT_GE(countKind(B, ExprKind::LetWeak), 1u);
}

TEST(Elaborate, PostfixIncrementUsesLetAtomic) {
  CoreProgram P = compileOk("int x; int main(void){ x++; return 0; }");
  EXPECT_EQ(countKind(mainBody(P), ExprKind::LetAtomic), 1u);
  // Prefix increment does not need atomicity (its value is the new value).
  CoreProgram P2 = compileOk("int x; int main(void){ ++x; return 0; }");
  EXPECT_EQ(countKind(mainBody(P2), ExprKind::LetAtomic), 0u);
}

TEST(Elaborate, CallsAreWrappedInIndet) {
  CoreProgram P = compileOk(
      "int f(void){ return 1; } int main(void){ return f() + f(); }");
  EXPECT_EQ(countKind(mainBody(P), ExprKind::Indet), 2u);
}

TEST(Elaborate, WhileBecomesSaveRun) {
  CoreProgram P = compileOk(R"(
int main(void) {
  int i = 0;
  while (i < 3) i++;
  return i;
}
)");
  const Expr &B = mainBody(P);
  // One save for the loop head, one for the break exit.
  EXPECT_EQ(countKind(B, ExprKind::Save), 2u);
  EXPECT_GE(countKind(B, ExprKind::Run), 1u);
}

TEST(Elaborate, SwitchSavesPerLabelPlusBreak) {
  CoreProgram P = compileOk(R"(
int main(void) {
  switch (1) {
  case 0: return 1;
  case 1: return 0;
  default: return 2;
  }
}
)");
  // saves: case 0, case 1, default, and the break exit.
  EXPECT_EQ(countKind(mainBody(P), ExprKind::Save), 4u);
}

TEST(Elaborate, LocalsCreateAndKill) {
  CoreProgram P = compileOk(R"(
int main(void) {
  int a = 1;
  {
    int b = 2;
    a += b;
  }
  return a;
}
)");
  const Expr &B = mainBody(P);
  EXPECT_EQ(countActions(B, ActionKind::Create, -1), 2u);
  EXPECT_EQ(countActions(B, ActionKind::Kill, -1), 2u);
}

TEST(Elaborate, ScopeAnnotationsOnLabels) {
  CoreProgram P = compileOk(R"(
int main(void) {
  int a = 1;
  {
    int b = 2;
  inner:
    b++;
    if (b < 4) goto inner;
  }
  return a;
}
)");
  // The save for `inner:` must list both a and b as live objects (§5.8).
  bool Checked = false;
  std::function<void(const Expr &)> Walk = [&](const Expr &E) {
    if (E.K == ExprKind::Save &&
        P.Syms.nameOf(E.Sym).rfind("inner", 0) == 0) {
      EXPECT_EQ(E.Scope.size(), 2u);
      Checked = true;
    }
    for (const ExprPtr &K : E.Kids)
      Walk(*K);
    for (const auto &[Pat, Body] : E.Branches)
      Walk(*Body);
  };
  Walk(mainBody(P));
  EXPECT_TRUE(Checked);
}

TEST(Elaborate, MallocBecomesBuiltinCallNotAction) {
  // malloc is a library builtin (ProcCall), not a Core alloc action — the
  // evaluator routes it through the model.
  CoreProgram P = compileOk(R"(
#include <stdlib.h>
int main(void) {
  void *p = malloc(4);
  free(p);
  return 0;
}
)");
  EXPECT_EQ(countActions(mainBody(P), ActionKind::Alloc, -1), 0u);
  EXPECT_GE(countKind(mainBody(P), ExprKind::ProcCall), 2u);
}

TEST(Elaborate, ShortCircuitHasNoUnseq) {
  // && evaluates strictly left-to-right: no unseq between its operands.
  CoreProgram P = compileOk(
      "int a, b; int main(void){ return a && b; }");
  EXPECT_EQ(countKind(mainBody(P), ExprKind::Unseq), 0u);
}

TEST(Elaborate, ConditionalElaboratesBothArms) {
  CoreProgram P = compileOk(
      "int c; int main(void){ return c ? 1 : 2; }");
  // Both arms are present in the Core (an EIf), chosen dynamically.
  EXPECT_GE(countKind(mainBody(P), ExprKind::EIf), 1u);
}

TEST(Elaborate, GlobalsCarryReadOnlyOnlyForLiterals) {
  CoreProgram P = compileOk(R"(
int g = 1;
int main(void) {
  const char *s = "lit";
  return g;
}
)");
  unsigned ReadOnly = 0, Writable = 0;
  for (const CoreGlobal &G : P.Globals)
    (G.ReadOnly ? ReadOnly : Writable)++;
  EXPECT_EQ(ReadOnly, 1u);  // the literal
  EXPECT_EQ(Writable, 1u);  // g
}

TEST(Elaborate, EveryProcEndsInReturn) {
  CoreProgram P = compileOk(R"(
void v(void) { }
int f(int x) { if (x) return 1; return 0; }
int main(void) { v(); return f(0); }
)");
  for (const auto &[Id, Proc] : P.Procs)
    EXPECT_GE(countKind(*Proc.Body, ExprKind::Ret), 1u)
        << P.Syms.nameOf(Proc.Name);
}

TEST(Elaborate, RewritePreservesBehaviour) {
  // The Core-to-Core rewrite must not change observable behaviour: run
  // the same program before and after (compile() already rewrites; here
  // we just pin the composite).
  const char *Src = R"(
#include <stdio.h>
int main(void) {
  int i, acc = 0;
  for (i = 0; i < 5; i++)
    acc = acc * 2 + i;
  printf("%d\n", acc);
  return 0;
}
)";
  auto R = exec::evaluateOnce(Src);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->Stdout, "26\n");
}
