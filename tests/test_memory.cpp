//===-- tests/test_memory.cpp - memory object model unit tests ------------===//

#include "mem/Memory.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::mem;
using ail::CType;
using ail::IntKind;

namespace {

struct MemFixture : ::testing::Test {
  ail::TagTable Tags;
  ail::ImplEnv Env{Tags};
  LeftmostScheduler Sched;

  Memory make(MemoryPolicy P) { return Memory(Env, Sched, P); }
};

MemValue intVal(Int128 V, Provenance P = Provenance::empty()) {
  return MemValue::integer(CType::intTy(), IntegerValue(V, P));
}

} // namespace

//===----------------------------------------------------------------------===//
// Allocation and basic load/store roundtrips across all policies
//===----------------------------------------------------------------------===//

class MemRoundtrip : public ::testing::TestWithParam<const char *> {
protected:
  MemoryPolicy policy() const {
    auto P = MemoryPolicy::byName(GetParam());
    return P ? *P : MemoryPolicy::defacto();
  }
};

TEST_P(MemRoundtrip, IntStoreLoad) {
  ail::TagTable Tags;
  ail::ImplEnv Env(Tags);
  LeftmostScheduler Sched;
  Memory M(Env, Sched, policy());
  PointerValue P = M.allocateObject(CType::intTy(), "x", false);
  ASSERT_TRUE(static_cast<bool>(M.store(CType::intTy(), P, intVal(1234))));
  auto R = M.load(CType::intTy(), P);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->IV.V, Int128(1234));
}

TEST_P(MemRoundtrip, NegativeValuesSignExtend) {
  ail::TagTable Tags;
  ail::ImplEnv Env(Tags);
  LeftmostScheduler Sched;
  Memory M(Env, Sched, policy());
  CType Sh = CType::makeInteger(IntKind::Short);
  PointerValue P = M.allocateObject(Sh, "s", false);
  ASSERT_TRUE(static_cast<bool>(
      M.store(Sh, P, MemValue::integer(Sh, IntegerValue(-2)))));
  auto R = M.load(Sh, P);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->IV.V, Int128(-2));
}

TEST_P(MemRoundtrip, PointerStoreLoadKeepsProvenance) {
  ail::TagTable Tags;
  ail::ImplEnv Env(Tags);
  LeftmostScheduler Sched;
  Memory M(Env, Sched, policy());
  CType IntPtr = CType::makePointer(CType::intTy());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue Cell = M.allocateObject(IntPtr, "p", false);
  ASSERT_TRUE(static_cast<bool>(
      M.store(IntPtr, Cell, MemValue::pointer(IntPtr, X))));
  auto R = M.load(IntPtr, Cell);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->PV.Addr, X.Addr);
  EXPECT_TRUE(R->PV.Prov == X.Prov);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, MemRoundtrip,
                         ::testing::Values("concrete", "defacto",
                                           "strict-iso", "cheri"));

//===----------------------------------------------------------------------===//
// Provenance checks (de facto model)
//===----------------------------------------------------------------------===//

TEST_F(MemFixture, AccessOutsideProvenanceFootprintIsUB) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue Y = M.allocateObject(CType::intTy(), "y", false);
  // Forge a pointer with x's provenance but y's address.
  PointerValue Forged = X;
  Forged.Addr = Y.Addr;
  auto R = M.load(CType::intTy(), Forged);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.ub().Kind, UBKind::AccessOutOfBounds);
}

TEST_F(MemFixture, ConcreteModelAllowsCrossObjectAddresses) {
  Memory M = make(MemoryPolicy::concrete());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue Y = M.allocateObject(CType::intTy(), "y", false);
  ASSERT_TRUE(static_cast<bool>(M.store(CType::intTy(), Y, intVal(5))));
  PointerValue Forged = X;
  Forged.Addr = Y.Addr;
  auto R = M.load(CType::intTy(), Forged);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->IV.V, Int128(5));
}

TEST_F(MemFixture, EmptyProvenanceAccessIsUB) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue P;
  P.Addr = X.Addr; // right address, no provenance
  auto R = M.load(CType::intTy(), P);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.ub().Kind, UBKind::AccessNoProvenance);
}

TEST_F(MemFixture, WildcardProvenanceResolvesByAddress) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  ASSERT_TRUE(static_cast<bool>(M.store(CType::intTy(), X, intVal(7))));
  PointerValue P;
  P.Prov = Provenance::wildcard();
  P.Addr = X.Addr;
  auto R = M.load(CType::intTy(), P);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->IV.V, Int128(7));
}

TEST_F(MemFixture, DeadObjectAccessIsUB) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  ASSERT_TRUE(static_cast<bool>(M.killObject(X)));
  auto R = M.load(CType::intTy(), X);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.ub().Kind, UBKind::AccessDeadObject);
}

//===----------------------------------------------------------------------===//
// Byte-level provenance (pointer copying, §2.3)
//===----------------------------------------------------------------------===//

TEST_F(MemFixture, CopyBytesCarriesPointerProvenance) {
  Memory M = make(MemoryPolicy::defacto());
  CType IntPtr = CType::makePointer(CType::intTy());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue A = M.allocateObject(IntPtr, "a", false);
  PointerValue B = M.allocateObject(IntPtr, "b", false);
  ASSERT_TRUE(static_cast<bool>(
      M.store(IntPtr, A, MemValue::pointer(IntPtr, X))));
  ASSERT_TRUE(static_cast<bool>(M.copyBytes(B, A, 8)));
  auto R = M.load(IntPtr, B);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_TRUE(R->PV.Prov == X.Prov);
  // And the copied pointer is usable:
  EXPECT_TRUE(static_cast<bool>(M.store(CType::intTy(), R->PV, intVal(1))));
}

TEST_F(MemFixture, MixedProvenanceBytesGiveEmptyProvenance) {
  Memory M = make(MemoryPolicy::defacto());
  CType IntPtr = CType::makePointer(CType::intTy());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue Y = M.allocateObject(CType::intTy(), "y", false);
  PointerValue A = M.allocateObject(IntPtr, "a", false);
  PointerValue B = M.allocateObject(IntPtr, "b", false);
  ASSERT_TRUE(static_cast<bool>(
      M.store(IntPtr, A, MemValue::pointer(IntPtr, X))));
  ASSERT_TRUE(static_cast<bool>(
      M.store(IntPtr, B, MemValue::pointer(IntPtr, Y))));
  // Splice: low 4 bytes from A, high 4 from B.
  PointerValue BHigh = B, AHigh = A;
  AHigh.Addr += 4;
  BHigh.Addr += 4;
  ASSERT_TRUE(static_cast<bool>(M.copyBytes(AHigh, BHigh, 4)));
  auto R = M.load(IntPtr, A);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_TRUE(R->PV.Prov.isEmpty()); // mixed-origin representation
}

TEST_F(MemFixture, UnwrittenBytesLoadAsUnspecified) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  auto R = M.load(CType::intTy(), X);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_TRUE(R->isUnspecified());
}

TEST_F(MemFixture, StaticObjectsAreZeroInitialised) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue X = M.allocateObject(CType::intTy(), "g", /*Static=*/true);
  auto R = M.load(CType::intTy(), X);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->IV.V, Int128(0));
}

//===----------------------------------------------------------------------===//
// Pointer operations
//===----------------------------------------------------------------------===//

TEST_F(MemFixture, RelationalIgnoresProvenanceDeFacto) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue Y = M.allocateObject(CType::intTy(), "y", false);
  auto R = M.ptrRel(0, X, Y); // <
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->V, Int128(X.Addr < Y.Addr ? 1 : 0));
}

TEST_F(MemFixture, RelationalAcrossObjectsUBStrict) {
  Memory M = make(MemoryPolicy::strictIso());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue Y = M.allocateObject(CType::intTy(), "y", false);
  auto R = M.ptrRel(0, X, Y);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.ub().Kind, UBKind::RelationalDifferentObjects);
}

TEST_F(MemFixture, PtrDiffSameObject) {
  Memory M = make(MemoryPolicy::defacto());
  CType Arr = CType::makeArray(CType::intTy(), 8);
  PointerValue A = M.allocateObject(Arr, "a", false);
  PointerValue A5 = A;
  A5.Addr += 5 * 4;
  auto R = M.ptrDiff(CType::intTy(), A5, A);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->V, Int128(5));
  EXPECT_TRUE(R->Prov.isEmpty()); // diffs are pure integers (Q9)
}

TEST_F(MemFixture, ArrayShiftOOBStrictVsDeFacto) {
  CType Arr = CType::makeArray(CType::intTy(), 4);
  {
    Memory M = make(MemoryPolicy::defacto());
    PointerValue A = M.allocateObject(Arr, "a", false);
    auto R = M.arrayShift(A, CType::intTy(), 100); // transient OOB: ok
    EXPECT_TRUE(static_cast<bool>(R));
  }
  {
    Memory M = make(MemoryPolicy::strictIso());
    PointerValue A = M.allocateObject(Arr, "a", false);
    auto R = M.arrayShift(A, CType::intTy(), 100);
    ASSERT_FALSE(static_cast<bool>(R));
    EXPECT_EQ(R.ub().Kind, UBKind::OutOfBoundsArithmetic);
    auto OnePast = M.arrayShift(A, CType::intTy(), 4); // blessed
    EXPECT_TRUE(static_cast<bool>(OnePast));
  }
}

TEST_F(MemFixture, IntFromPtrRoundtrip) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  auto I = M.intFromPtr(CType::uintptrTy(), X);
  ASSERT_TRUE(static_cast<bool>(I));
  EXPECT_TRUE(I->Prov == X.Prov);
  auto P = M.ptrFromInt(*I);
  ASSERT_TRUE(static_cast<bool>(P));
  EXPECT_EQ(P->Addr, X.Addr);
  EXPECT_TRUE(P->Prov == X.Prov);
}

TEST_F(MemFixture, FinishArithSubtractionKillsProvenance) {
  Memory M = make(MemoryPolicy::defacto());
  IntegerValue A(100, Provenance::alloc(1));
  IntegerValue B(40, Provenance::alloc(2));
  IntegerValue R = M.finishArith(ArithOp::Sub, A, B, 60, CType::sizeTy());
  EXPECT_TRUE(R.Prov.isEmpty()); // Q9: offsets are pure
  // One provenanced, one pure: provenance flows through.
  IntegerValue R2 =
      M.finishArith(ArithOp::Add, A, IntegerValue(4), 104, CType::sizeTy());
  EXPECT_TRUE(R2.Prov == A.Prov);
}

//===----------------------------------------------------------------------===//
// Heap discipline
//===----------------------------------------------------------------------===//

TEST_F(MemFixture, FreeDisciplines) {
  Memory M = make(MemoryPolicy::defacto());
  PointerValue H = M.allocateRegion(16, 16);
  EXPECT_TRUE(static_cast<bool>(M.freeRegion(H)));
  auto Again = M.freeRegion(H);
  ASSERT_FALSE(static_cast<bool>(Again));
  EXPECT_EQ(Again.ub().Kind, UBKind::DoubleFree);

  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  auto Bad = M.freeRegion(X);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.ub().Kind, UBKind::FreeInvalidPointer);

  EXPECT_TRUE(static_cast<bool>(M.freeRegion(PointerValue::null())));

  PointerValue H2 = M.allocateRegion(16, 16);
  PointerValue Mid = H2;
  Mid.Addr += 4;
  auto BadMid = M.freeRegion(Mid);
  ASSERT_FALSE(static_cast<bool>(BadMid));
  EXPECT_EQ(BadMid.ub().Kind, UBKind::FreeInvalidPointer);
}

//===----------------------------------------------------------------------===//
// Effective types (strict model)
//===----------------------------------------------------------------------===//

TEST_F(MemFixture, EffectiveTypeFromDeclaration) {
  Memory M = make(MemoryPolicy::strictIso());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  ASSERT_TRUE(static_cast<bool>(M.store(CType::intTy(), X, intVal(1))));
  // Reading as short violates the declared type...
  CType Sh = CType::makeInteger(IntKind::Short);
  auto Bad = M.load(Sh, X);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.ub().Kind, UBKind::EffectiveTypeViolation);
  // ...but character-type access is always allowed (6.5p7).
  auto Ch = M.load(CType::makeInteger(IntKind::UChar), X);
  EXPECT_TRUE(static_cast<bool>(Ch));
  // ...and so is the signed/unsigned sibling.
  auto U = M.load(CType::uintTy(), X);
  EXPECT_TRUE(static_cast<bool>(U));
}

TEST_F(MemFixture, EffectiveTypeOfMallocSetByStore) {
  Memory M = make(MemoryPolicy::strictIso());
  PointerValue H = M.allocateRegion(8, 8);
  ASSERT_TRUE(static_cast<bool>(M.store(CType::intTy(), H, intVal(1))));
  EXPECT_TRUE(static_cast<bool>(M.load(CType::intTy(), H)));
  CType Sh = CType::makeInteger(IntKind::Short);
  auto Bad = M.load(Sh, H);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_EQ(Bad.ub().Kind, UBKind::EffectiveTypeViolation);
  // A fresh store re-types the offset.
  ASSERT_TRUE(static_cast<bool>(
      M.store(Sh, H, MemValue::integer(Sh, IntegerValue(2)))));
  EXPECT_TRUE(static_cast<bool>(M.load(Sh, H)));
}

//===----------------------------------------------------------------------===//
// CHERI capability semantics (§4)
//===----------------------------------------------------------------------===//

TEST_F(MemFixture, CheriTagRequiredForAccess) {
  Memory M = make(MemoryPolicy::cheri());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  ASSERT_TRUE(X.Cap && X.Cap->Tag);
  PointerValue Untagged = X;
  Untagged.Cap = Capability{0, 0, false};
  auto R = M.load(CType::intTy(), Untagged);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.ub().Kind, UBKind::CapabilityTagViolation);
}

TEST_F(MemFixture, CheriOffsetAndQuirk) {
  Memory M = make(MemoryPolicy::cheri());
  CType L = CType::makeInteger(IntKind::Long);
  PointerValue X = M.allocateObject(L, "x", false);
  auto I = M.intFromPtr(CType::uintptrTy(), X);
  ASSERT_TRUE(static_cast<bool>(I) && I->Cap);
  // (i & 7): numerically 0 (aligned base), but the capability AND applies
  // to the *offset* and re-adds the base (§4).
  IntegerValue R = M.finishArith(ArithOp::And, *I, IntegerValue(7),
                                 /*NumericResult=*/0, CType::uintptrTy());
  EXPECT_EQ(R.V, Int128(X.Addr)); // base + (0 & 7) == base != 0
}

TEST_F(MemFixture, CheriExactEquality) {
  Memory M = make(MemoryPolicy::cheri());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue Y = M.allocateObject(CType::intTy(), "y", false);
  PointerValue XPlus = X;
  XPlus.Addr = Y.Addr; // same address as y, x's capability
  auto R = M.ptrEq(XPlus, Y);
  ASSERT_TRUE(static_cast<bool>(R));
  EXPECT_EQ(R->V, Int128(0)); // metadata differs -> not equal
}

TEST_F(MemFixture, CheriByteCopyStripsTag) {
  Memory M = make(MemoryPolicy::cheri());
  CType IntPtr = CType::makePointer(CType::intTy());
  PointerValue X = M.allocateObject(CType::intTy(), "x", false);
  PointerValue A = M.allocateObject(IntPtr, "a", false);
  PointerValue B = M.allocateObject(IntPtr, "b", false);
  ASSERT_TRUE(static_cast<bool>(
      M.store(IntPtr, A, MemValue::pointer(IntPtr, X))));
  // Byte-granularity copy through unsigned char values: tags do not
  // survive (each byte is re-stored as a plain integer).
  CType UC = CType::makeInteger(IntKind::UChar);
  for (unsigned I = 0; I < 8; ++I) {
    PointerValue Src = A, Dst = B;
    Src.Addr += I;
    Dst.Addr += I;
    auto Byte = M.load(UC, Src);
    ASSERT_TRUE(static_cast<bool>(Byte));
    ASSERT_TRUE(static_cast<bool>(M.store(UC, Dst, *Byte)));
  }
  auto R = M.load(IntPtr, B);
  ASSERT_TRUE(static_cast<bool>(R));
  ASSERT_TRUE(R->PV.Cap.has_value());
  EXPECT_FALSE(R->PV.Cap->Tag);
}

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

TEST_F(MemFixture, ReverseGlobalLayoutMakesYXAdjacent) {
  Memory M = make(MemoryPolicy::defacto());
  // Declaration order y then x (the paper's provenance_basic_global_yx).
  M.beginStaticLayout({{CType::intTy(), "y"}, {CType::intTy(), "x"}});
  PointerValue Y = M.allocateObject(CType::intTy(), "y", true);
  PointerValue X = M.allocateObject(CType::intTy(), "x", true);
  EXPECT_EQ(X.Addr + 4, Y.Addr); // &x + 1 == &y
}

TEST_F(MemFixture, AllocationsAreNaturallyAligned) {
  Memory M = make(MemoryPolicy::defacto());
  (void)M.allocateObject(CType::charTy(), "c", false);
  PointerValue L =
      M.allocateObject(CType::makeInteger(IntKind::Long), "l", false);
  EXPECT_EQ(L.Addr % 8, 0u);
}
