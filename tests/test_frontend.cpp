//===-- tests/test_frontend.cpp - lexer + parser unit tests ---------------===//

#include "cabs/Lexer.h"
#include "cabs/Parser.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::cabs;

namespace {

std::vector<Token> lexOk(std::string_view Src) {
  auto R = lex(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.error().str());
  return R ? std::move(*R) : std::vector<Token>{};
}

} // namespace

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, KeywordsAndIdentifiers) {
  auto T = lexOk("int foo while whilex _Bool");
  ASSERT_EQ(T.size(), 6u); // incl. EOF
  EXPECT_EQ(T[0].Kind, Tok::KwInt);
  EXPECT_EQ(T[1].Kind, Tok::Ident);
  EXPECT_EQ(T[1].Text, "foo");
  EXPECT_EQ(T[2].Kind, Tok::KwWhile);
  EXPECT_EQ(T[3].Kind, Tok::Ident); // not a keyword
  EXPECT_EQ(T[4].Kind, Tok::KwBool);
}

TEST(Lexer, MaximalMunchPunctuators) {
  auto T = lexOk("a+++b <<= >>= ... ->");
  EXPECT_EQ(T[1].Kind, Tok::PlusPlus); // a ++ + b
  EXPECT_EQ(T[2].Kind, Tok::Plus);
  EXPECT_EQ(T[4].Kind, Tok::LessLessEq);
  EXPECT_EQ(T[5].Kind, Tok::GreaterGreaterEq);
  EXPECT_EQ(T[6].Kind, Tok::Ellipsis);
  EXPECT_EQ(T[7].Kind, Tok::Arrow);
}

TEST(Lexer, CommentsStripped) {
  auto T = lexOk("a /* b\nc */ d // e\nf");
  ASSERT_EQ(T.size(), 4u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "d");
  EXPECT_EQ(T[2].Text, "f");
}

TEST(Lexer, UnterminatedCommentIsError) {
  EXPECT_FALSE(static_cast<bool>(lex("a /* b")));
}

TEST(Lexer, CharConstants) {
  auto T = lexOk(R"('a' '\n' '\0' '\x41' '\\')");
  EXPECT_EQ(T[0].IntValue, 'a');
  EXPECT_EQ(T[1].IntValue, '\n');
  EXPECT_EQ(T[2].IntValue, 0);
  EXPECT_EQ(T[3].IntValue, 0x41);
  EXPECT_EQ(T[4].IntValue, '\\');
}

TEST(Lexer, StringLiteralsDecodeAndConcatenate) {
  auto T = lexOk(R"("ab\n" "cd")");
  ASSERT_EQ(T.size(), 2u);
  EXPECT_EQ(T[0].Kind, Tok::StringLit);
  EXPECT_EQ(T[0].Text, "ab\ncd"); // 6.4.5p5 concatenation
}

TEST(Lexer, ObjectLikeMacros) {
  auto T = lexOk("#define N 42\nint x = N;");
  bool SawFortyTwo = false;
  for (const Token &Tok1 : T)
    if (Tok1.Kind == Tok::IntConst && Tok1.Text == "42")
      SawFortyTwo = true;
  EXPECT_TRUE(SawFortyTwo);
}

TEST(Lexer, IfdefSkipsInactiveRegion) {
  auto T = lexOk("#define YES 1\n#ifdef NO\nint skipped;\n#endif\nint x;");
  for (const Token &Tok1 : T)
    EXPECT_NE(Tok1.Text, "skipped");
}

TEST(Lexer, IncludeIsIgnored) {
  auto T = lexOk("#include <stdio.h>\nint x;");
  EXPECT_EQ(T[0].Kind, Tok::KwInt);
}

TEST(Lexer, LineSplices) {
  auto T = lexOk("in\\\nt x;");
  EXPECT_EQ(T[0].Kind, Tok::KwInt);
}

TEST(Lexer, TracksLineNumbers) {
  auto T = lexOk("a\nb\n  c");
  EXPECT_EQ(T[0].Loc.Line, 1u);
  EXPECT_EQ(T[1].Loc.Line, 2u);
  EXPECT_EQ(T[2].Loc.Line, 3u);
  EXPECT_EQ(T[2].Loc.Col, 3u);
}

//===----------------------------------------------------------------------===//
// Parser: expressions
//===----------------------------------------------------------------------===//

namespace {

CabsExprPtr parseOk(std::string_view Src) {
  auto R = parseExpression(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.error().str());
  return R ? std::move(*R) : nullptr;
}

} // namespace

TEST(Parser, Precedence) {
  auto E = parseOk("1 + 2 * 3");
  ASSERT_EQ(E->Kind, CabsExprKind::Binary);
  EXPECT_EQ(E->BOp, BinaryOp::Add);
  EXPECT_EQ(E->Kids[1]->BOp, BinaryOp::Mul);
}

TEST(Parser, LeftAssociativity) {
  auto E = parseOk("1 - 2 - 3");
  // (1 - 2) - 3
  ASSERT_EQ(E->Kind, CabsExprKind::Binary);
  EXPECT_EQ(E->Kids[0]->Kind, CabsExprKind::Binary);
  EXPECT_EQ(E->Kids[1]->Kind, CabsExprKind::IntConst);
}

TEST(Parser, AssignmentIsRightAssociative) {
  auto E = parseOk("a = b = 1");
  ASSERT_EQ(E->Kind, CabsExprKind::Assign);
  EXPECT_EQ(E->Kids[1]->Kind, CabsExprKind::Assign);
}

TEST(Parser, ConditionalNesting) {
  auto E = parseOk("a ? b : c ? d : e");
  // a ? b : (c ? d : e)
  ASSERT_EQ(E->Kind, CabsExprKind::Cond);
  EXPECT_EQ(E->Kids[2]->Kind, CabsExprKind::Cond);
}

TEST(Parser, PostfixChains) {
  auto E = parseOk("a.b[1](2)->c");
  ASSERT_EQ(E->Kind, CabsExprKind::MemberPtr);
  EXPECT_EQ(E->Text, "c");
  EXPECT_EQ(E->Kids[0]->Kind, CabsExprKind::Call);
}

TEST(Parser, SizeofForms) {
  EXPECT_EQ(parseOk("sizeof x")->Kind, CabsExprKind::SizeofExpr);
  EXPECT_EQ(parseOk("sizeof(int)")->Kind, CabsExprKind::SizeofType);
  EXPECT_EQ(parseOk("sizeof(int*)")->Kind, CabsExprKind::SizeofType);
}

TEST(Parser, CastVsParenthesisedExpr) {
  auto Cast = parseOk("(int)x");
  EXPECT_EQ(Cast->Kind, CabsExprKind::Cast);
  auto Mul = parseOk("(x)*y"); // x is not a typedef here: multiplication
  EXPECT_EQ(Mul->Kind, CabsExprKind::Binary);
}

TEST(Parser, UnaryChain) {
  auto E = parseOk("*&!~-+x");
  EXPECT_EQ(E->Kind, CabsExprKind::Unary);
  EXPECT_EQ(E->UOp, UnaryOp::Deref);
}

//===----------------------------------------------------------------------===//
// Parser: declarations and whole units
//===----------------------------------------------------------------------===//

namespace {

CabsTranslationUnit unitOk(std::string_view Src) {
  auto R = parseTranslationUnit(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.error().str());
  return R ? std::move(*R) : CabsTranslationUnit{};
}

/// Walks a declarator-produced type spine collecting the kinds.
std::vector<CabsTypeKind> spine(const CabsTypePtr &Ty) {
  std::vector<CabsTypeKind> Out;
  for (CabsTypePtr T = Ty; T; T = T->Inner)
    Out.push_back(T->Kind);
  return Out;
}

} // namespace

TEST(Parser, DeclaratorPointerToArray) {
  auto U = unitOk("int (*p)[3];");
  ASSERT_EQ(U.Items.size(), 1u);
  const CabsDecl &D = U.Items[0].Decls[0];
  EXPECT_EQ(D.Name, "p");
  // pointer -> array -> base
  EXPECT_EQ(spine(D.Ty),
            (std::vector<CabsTypeKind>{CabsTypeKind::Pointer,
                                       CabsTypeKind::Array,
                                       CabsTypeKind::Base}));
}

TEST(Parser, DeclaratorArrayOfPointers) {
  auto U = unitOk("int *p[3];");
  EXPECT_EQ(spine(U.Items[0].Decls[0].Ty),
            (std::vector<CabsTypeKind>{CabsTypeKind::Array,
                                       CabsTypeKind::Pointer,
                                       CabsTypeKind::Base}));
}

TEST(Parser, DeclaratorMultiDimArray) {
  auto U = unitOk("int a[2][3];");
  EXPECT_EQ(spine(U.Items[0].Decls[0].Ty),
            (std::vector<CabsTypeKind>{CabsTypeKind::Array,
                                       CabsTypeKind::Array,
                                       CabsTypeKind::Base}));
}

TEST(Parser, DeclaratorFunctionPointer) {
  auto U = unitOk("int (*f)(int, char);");
  EXPECT_EQ(spine(U.Items[0].Decls[0].Ty),
            (std::vector<CabsTypeKind>{CabsTypeKind::Pointer,
                                       CabsTypeKind::Function,
                                       CabsTypeKind::Base}));
}

TEST(Parser, DeclaratorArrayOfFunctionPointers) {
  auto U = unitOk("int (*ops[4])(int);");
  EXPECT_EQ(spine(U.Items[0].Decls[0].Ty),
            (std::vector<CabsTypeKind>{CabsTypeKind::Array,
                                       CabsTypeKind::Pointer,
                                       CabsTypeKind::Function,
                                       CabsTypeKind::Base}));
}

TEST(Parser, TypedefNameDisambiguation) {
  // After the typedef, (T)x parses as a cast.
  auto U = unitOk("typedef int T; int f(void) { return (T)1.0 == 1; }");
  EXPECT_EQ(U.Items.size(), 2u);
}

TEST(Parser, TypedefShadowedByVariable) {
  auto U = unitOk("typedef int T; int f(void) { int T = 2; return T * 3; }");
  EXPECT_EQ(U.Items.size(), 2u);
}

TEST(Parser, FunctionDefinitionVsPrototype) {
  auto U = unitOk("int f(int a); int f(int a) { return a; }");
  ASSERT_EQ(U.Items.size(), 2u);
  EXPECT_FALSE(U.Items[0].isFunction());
  EXPECT_TRUE(U.Items[1].isFunction());
}

TEST(Parser, StructDefinitionWithMembers) {
  auto U = unitOk("struct s { int x; char c; struct s *next; };");
  const CabsDecl &D = U.Items[0].Decls[0];
  EXPECT_EQ(D.Ty->Kind, CabsTypeKind::StructUnion);
  EXPECT_EQ(D.Ty->Fields.size(), 3u);
}

TEST(Parser, EnumWithValues) {
  auto U = unitOk("enum e { A, B = 10, C };");
  EXPECT_EQ(U.Items[0].Decls[0].Ty->Enumerators.size(), 3u);
}

TEST(Parser, StatementsRoundtrip) {
  // Make sure all statement forms parse inside a function.
  unitOk(R"(
int f(int n) {
  int i, acc = 0;
  for (i = 0; i < n; i++) {
    if (i == 2) continue;
    else acc += i;
    while (acc > 100) { acc /= 2; break; }
    do acc++; while (0);
    switch (i) {
    case 0: acc = 1; break;
    default: break;
    }
  }
  goto out;
out:
  return acc;
}
)");
}

TEST(Parser, ErrorsCiteIsoClauses) {
  auto R = parseTranslationUnit("int f(void) { return 1 }");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.error().str().find("expected"), std::string::npos);
}

TEST(Parser, RejectsBitfields) {
  EXPECT_FALSE(
      static_cast<bool>(parseTranslationUnit("struct s { int x : 3; };")));
}

TEST(Parser, RejectsFunctionLikeMacros) {
  EXPECT_FALSE(static_cast<bool>(
      parseTranslationUnit("#define F(x) x\nint y = F(1);")));
}

//===----------------------------------------------------------------------===//
// Preprocessor corner cases
//===----------------------------------------------------------------------===//

TEST(Lexer, UndefRemovesMacro) {
  auto T = lexOk("#define N 1\n#undef N\nint N;");
  // N stays an identifier (no substitution).
  EXPECT_EQ(T[1].Kind, Tok::Ident);
  EXPECT_EQ(T[1].Text, "N");
}

TEST(Lexer, NestedIfdef) {
  auto T = lexOk(R"(
#define A 1
#ifdef A
#ifdef B
int not_this;
#endif
int this_one;
#endif
)");
  bool SawThis = false;
  for (const Token &Tok1 : T) {
    EXPECT_NE(Tok1.Text, "not_this");
    if (Tok1.Text == "this_one")
      SawThis = true;
  }
  EXPECT_TRUE(SawThis);
}

TEST(Lexer, ElseBranch) {
  auto T = lexOk("#ifdef NOPE\nint a;\n#else\nint b;\n#endif\n");
  ASSERT_GE(T.size(), 2u);
  EXPECT_EQ(T[1].Text, "b");
}

TEST(Lexer, MacroInsideStringNotSubstituted) {
  auto T = lexOk("#define N 42\nchar *s = \"N\";");
  for (const Token &Tok1 : T)
    if (Tok1.Kind == Tok::StringLit)
      EXPECT_EQ(Tok1.Text, "N");
}

TEST(Lexer, HashInsideLineIsNotADirective) {
  // '#' only introduces a directive at the start of a line; elsewhere it
  // is a stray character (we have no stringize operator).
  EXPECT_FALSE(static_cast<bool>(lex("int x = 1 # 2;")));
}

TEST(Lexer, EndifWithoutIfIsError) {
  EXPECT_FALSE(static_cast<bool>(lex("#endif\nint x;")));
}

TEST(Parser, EnumInSwitch) {
  unitOk(R"(
enum mode { OFF, ON };
int f(enum mode m) {
  switch (m) {
  case OFF: return 0;
  case ON: return 1;
  }
  return 2;
}
)");
}

TEST(Parser, PointerReturningFunctionDeclarators) {
  auto U = unitOk("char *strdupish(const char *s);");
  EXPECT_EQ(spine(U.Items[0].Decls[0].Ty),
            (std::vector<CabsTypeKind>{CabsTypeKind::Function,
                                       CabsTypeKind::Pointer,
                                       CabsTypeKind::Base}));
}

TEST(Parser, AnonymousStructTagInTypedef) {
  unitOk("typedef struct { int x; } box; box b;");
}
