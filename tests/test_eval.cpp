//===-- tests/test_eval.cpp - end-to-end C semantics tests ----------------===//
//
// Integration tests: C source in, observable behaviour out, through the
// whole pipeline under the candidate de facto model.
//
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::exec;

namespace {

Outcome run(std::string_view Src) {
  auto R = evaluateOnce(Src);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.error().str());
  if (!R)
    return Outcome{};
  return *R;
}

void expectOut(std::string_view Src, std::string_view Stdout,
               int Exit = 0) {
  Outcome O = run(Src);
  EXPECT_EQ(O.Kind, OutcomeKind::Exit) << O.str();
  EXPECT_EQ(O.Stdout, Stdout);
  EXPECT_EQ(O.ExitCode, Exit);
}

void expectExit(std::string_view Src, int Exit) {
  Outcome O = run(Src);
  EXPECT_EQ(O.Kind, OutcomeKind::Exit) << O.str();
  EXPECT_EQ(O.ExitCode, Exit);
}

void expectUB(std::string_view Src, mem::UBKind K) {
  Outcome O = run(Src);
  EXPECT_EQ(O.Kind, OutcomeKind::Undef) << O.str();
  EXPECT_EQ(O.UB.Kind, K) << O.UB.str();
}

void expectCompileError(std::string_view Src, std::string_view Fragment) {
  auto R = evaluateOnce(Src);
  ASSERT_FALSE(static_cast<bool>(R)) << "unexpectedly compiled";
  EXPECT_NE(R.error().str().find(Fragment), std::string::npos)
      << R.error().str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Arithmetic and conversions (§5.5)
//===----------------------------------------------------------------------===//

TEST(EvalArith, BasicInteger) {
  expectExit("int main(void){ return 2 + 3 * 4; }", 14);
  expectExit("int main(void){ return (2 + 3) * 4; }", 20);
  expectExit("int main(void){ return 17 / 5; }", 3);
  expectExit("int main(void){ return 17 % 5; }", 2);
  expectExit("int main(void){ return -17 / 5; }", -3); // truncation (6.5.5)
  expectExit("int main(void){ return -17 % 5; }", -2);
}

TEST(EvalArith, MinusOneLessThanUnsignedZero) {
  // §5.5: -1 < (unsigned int)0 evaluates to 0.
  expectExit("int main(void){ return -1 < (unsigned int)0; }", 0);
  expectExit("int main(void){ return -1 < 0; }", 1);
}

TEST(EvalArith, UnsignedWraparound) {
  expectOut(R"(
#include <stdio.h>
int main(void) {
  unsigned int x = 0u;
  x = x - 1u;
  printf("%u\n", x);
  return 0;
}
)",
            "4294967295\n");
}

TEST(EvalArith, SignedOverflowIsUB) {
  expectUB("int main(void){ int x = 2147483647; return x + 1; }",
           mem::UBKind::ExceptionalCondition);
  expectUB("int main(void){ int x = -2147483647 - 1; return -x; }",
           mem::UBKind::ExceptionalCondition);
  expectUB("int main(void){ int x = -2147483647 - 1; return x / -1; }",
           mem::UBKind::ExceptionalCondition);
}

TEST(EvalArith, DivisionByZeroIsUB) {
  expectUB("int main(void){ int z = 0; return 1 / z; }",
           mem::UBKind::DivisionByZero);
  expectUB("int main(void){ int z = 0; return 1 % z; }",
           mem::UBKind::DivisionByZero);
}

TEST(EvalArith, ShiftUBPerFig3) {
  expectUB("int main(void){ int s = 33; return 1 << s; }",
           mem::UBKind::ShiftTooLarge);
  expectUB("int main(void){ int s = -1; return 1 << s; }",
           mem::UBKind::NegativeShift);
  expectUB("int main(void){ int x = -1; return x << 1; }",
           mem::UBKind::ExceptionalCondition); // negative E1 (6.5.7p4)
  expectExit("int main(void){ return 5 << 2; }", 20);
  // Unsigned left shift reduces modulo 2^N.
  expectOut(R"(
#include <stdio.h>
int main(void){ unsigned x = 3u; printf("%u\n", x << 31); return 0; }
)",
            "2147483648\n");
}

TEST(EvalArith, ArithmeticRightShiftOfNegative) {
  // Impl-defined; ours is the universal arithmetic shift.
  expectExit("int main(void){ int x = -8; return x >> 1; }", -4);
  expectExit("int main(void){ int x = -7; return x >> 1; }", -4); // floor
}

TEST(EvalArith, BitwiseOps) {
  expectExit("int main(void){ return (0xF0 & 0x3C) | (1 ^ 3); }",
             0x30 | 2);
  expectExit("int main(void){ return ~0 == -1; }", 1);
  expectOut(R"(
#include <stdio.h>
int main(void){ unsigned char c = 200; printf("%d\n", (unsigned char)~c);
  return 0; }
)",
            "55\n");
}

TEST(EvalArith, IntegerPromotionInComparisons) {
  // char arithmetic happens at int.
  expectExit("int main(void){ char a = 100, b = 100; return (a + b) > 150; }",
             1);
}

TEST(EvalArith, NarrowingConversionWraps) {
  expectExit("int main(void){ unsigned char c = 300; return c; }", 44);
  expectExit("int main(void){ signed char c = 130; return c; }", -126);
  expectExit("int main(void){ _Bool b = 42; return b; }", 1);
}

//===----------------------------------------------------------------------===//
// Control flow (§5.8)
//===----------------------------------------------------------------------===//

TEST(EvalControl, LoopsAllForms) {
  expectExit(R"(
int main(void) {
  int s = 0, i;
  for (i = 1; i <= 10; i++) s += i;
  while (s > 50) s -= 1;
  do s += 2; while (s < 54);
  return s;
}
)",
             54);
}

TEST(EvalControl, ContinueInForGoesToStep) {
  // If continue skipped the step, this would loop forever.
  expectExit(R"(
int main(void) {
  int n = 0, i;
  for (i = 0; i < 10; i++) {
    if (i % 2 == 0) continue;
    n += i;
  }
  return n; /* 1+3+5+7+9 */
}
)",
             25);
}

TEST(EvalControl, ContinueInDoWhileChecksCondition) {
  expectExit(R"(
int main(void) {
  int i = 0, n = 0;
  do {
    i++;
    if (i == 2) continue;
    n += i;
  } while (i < 4);
  return n * 10 + i; /* n = 1+3+4 = 8, i = 4 */
}
)",
             84);
}

TEST(EvalControl, NestedLoopsBreakInner) {
  expectExit(R"(
int main(void) {
  int c = 0, i, j;
  for (i = 0; i < 3; i++)
    for (j = 0; j < 10; j++) {
      if (j == 2) break;
      c++;
    }
  return c; /* 3 * 2 */
}
)",
             6);
}

TEST(EvalControl, GotoForwardAndBackward) {
  expectExit(R"(
int main(void) {
  int n = 0;
top:
  n++;
  if (n < 5) goto top;
  goto done;
  n = 100;
done:
  return n;
}
)",
             5);
}

TEST(EvalControl, SwitchDispatchAndDefault) {
  expectExit(R"(
int classify(int x) {
  switch (x) {
  case 1: return 10;
  case 2:
  case 3: return 20;
  default: return 30;
  }
}
int main(void) {
  return classify(1) + classify(2) + classify(3) + classify(9);
}
)",
             80);
}

TEST(EvalControl, SwitchWithoutMatchingCaseSkipsBody) {
  expectExit(R"(
int main(void) {
  int n = 0;
  switch (42) {
  case 1: n = 1;
  }
  return n;
}
)",
             0);
}

TEST(EvalControl, ShortCircuitEvaluation) {
  expectExit(R"(
int g = 0;
int bump(void) { g++; return 1; }
int main(void) {
  0 && bump();
  1 || bump();
  1 && bump();
  0 || bump();
  return g;
}
)",
             2);
}

TEST(EvalControl, ConditionalOperator) {
  expectExit("int main(void){ return 1 ? 10 : 20; }", 10);
  expectExit(R"(
int main(void) {
  int a = 5;
  int *p = a > 3 ? &a : (int*)0;
  return p ? *p : -1;
}
)",
             5);
}

TEST(EvalControl, RecursionAndMutualRecursion) {
  expectExit(R"(
int isOdd(int n);
int isEven(int n) { return n == 0 ? 1 : isOdd(n - 1); }
int isOdd(int n) { return n == 0 ? 0 : isEven(n - 1); }
int main(void) { return isEven(10) * 10 + isOdd(7); }
)",
             11);
}

TEST(EvalControl, MainFallingOffReturnsZero) {
  expectExit("int main(void){ int x = 5; }", 0); // 5.1.2.2.3p1
}

//===----------------------------------------------------------------------===//
// Objects, pointers, aggregates
//===----------------------------------------------------------------------===//

TEST(EvalObjects, GlobalInitialisationOrderAndZeroing) {
  expectExit(R"(
int a = 5;
int b;       /* static storage: zero */
int *p = &a; /* address constant */
int main(void) { return *p + b; }
)",
             5);
}

TEST(EvalObjects, ArrayInitialisationPartialZeroFill) {
  expectExit(R"(
int main(void) {
  int a[5] = {1, 2};
  return a[0] + a[1] + a[2] + a[3] + a[4];
}
)",
             3);
}

TEST(EvalObjects, MultidimensionalArrays) {
  expectExit(R"(
int main(void) {
  int m[2][3] = {{1, 2, 3}, {4, 5, 6}};
  int s = 0, i, j;
  for (i = 0; i < 2; i++)
    for (j = 0; j < 3; j++)
      s += m[i][j];
  return s;
}
)",
             21);
}

TEST(EvalObjects, StringLiteralsAreObjects) {
  expectOut(R"(
#include <stdio.h>
int main(void) {
  const char *s = "hi";
  char buf[] = "world";
  printf("%s %s %d\n", s, buf, (int)sizeof buf);
  return 0;
}
)",
            "hi world 6\n");
}

TEST(EvalObjects, StructByValueSemantics) {
  expectExit(R"(
struct pair { int a, b; };
struct pair swap(struct pair p) {
  struct pair q;
  q.a = p.b;
  q.b = p.a;
  return q;
}
int main(void) {
  struct pair p = {1, 2};
  struct pair q = swap(p);
  return q.a * 10 + q.b; /* 21 */
}
)",
             21);
}

TEST(EvalObjects, NestedStructAndPointerChasing) {
  expectExit(R"(
struct node { int v; struct node *next; };
int main(void) {
  struct node c = {3, 0};
  struct node b = {2, &c};
  struct node a = {1, &b};
  int s = 0;
  struct node *p = &a;
  while (p) {
    s += p->v;
    p = p->next;
  }
  return s;
}
)",
             6);
}

TEST(EvalObjects, UnionSharesStorage) {
  expectExit(R"(
union u { int i; unsigned char c[4]; };
int main(void) {
  union u v;
  v.i = 258; /* 0x0102 */
  return v.c[0] + v.c[1]; /* 2 + 1 little-endian */
}
)",
             3);
}

TEST(EvalObjects, PointerArithmeticAndIndexEquivalence) {
  expectExit(R"(
int main(void) {
  int a[4] = {10, 20, 30, 40};
  int *p = a;
  return *(p + 2) == p[2] && 2[a] == 30 ? a[3] : -1;
}
)",
             40);
}

TEST(EvalObjects, SizeofVariants) {
  expectOut(R"(
#include <stdio.h>
struct s { char c; long l; };
int main(void) {
  int a[3];
  printf("%d %d %d %d %d\n", (int)sizeof(int), (int)sizeof a,
         (int)sizeof(struct s), (int)sizeof(char*), (int)sizeof a[0]);
  return 0;
}
)",
            "4 12 16 8 4\n");
}

TEST(EvalObjects, FunctionPointersInStructs) {
  expectExit(R"(
int twice(int x) { return 2 * x; }
int thrice(int x) { return 3 * x; }
struct op { int (*f)(int); int arg; };
int main(void) {
  struct op ops[2] = {{twice, 10}, {thrice, 5}};
  return ops[0].f(ops[0].arg) + ops[1].f(ops[1].arg);
}
)",
             35);
}

TEST(EvalObjects, CompoundAssignmentNarrowing) {
  expectExit(R"(
int main(void) {
  unsigned char c = 250;
  c += 10; /* computed at int, stored back mod 256 */
  return c;
}
)",
             4);
}

TEST(EvalObjects, PrePostIncrementValues) {
  expectExit(R"(
int main(void) {
  int i = 5;
  int a = i++;
  int b = ++i;
  int *p; int arr[3] = {1,2,3};
  p = arr;
  int c = *p++;
  return a * 100 + b * 10 + (c + *p); /* 5,7,1+2 */
}
)",
             573);
}

TEST(EvalObjects, EnumsAreInts) {
  expectExit(R"(
enum color { RED, GREEN = 5, BLUE };
int main(void) { return RED + GREEN + BLUE; } /* 0 + 5 + 6 */
)",
             11);
}

TEST(EvalObjects, TypedefsResolve) {
  expectExit(R"(
typedef unsigned long size_type;
typedef struct { int x; } box;
int main(void) {
  box b;
  b.x = 3;
  size_type n = sizeof(box);
  return b.x + (int)n;
}
)",
             7);
}

TEST(EvalObjects, BlockScopeStatics) {
  expectExit(R"(
int counter(void) {
  static int n = 0;
  n++;
  return n;
}
int main(void) { counter(); counter(); return counter(); }
)",
             3);
}

//===----------------------------------------------------------------------===//
// Library shims
//===----------------------------------------------------------------------===//

TEST(EvalLib, PrintfConversions) {
  expectOut(R"(
#include <stdio.h>
int main(void) {
  printf("%d|%u|%x|%c|%s|%%\n", -5, 7u, 255, 65, "str");
  printf("%ld %lu %zu\n", -9L, 9ul, sizeof(int));
  return 0;
}
)",
            "-5|7|ff|A|str|%\n-9 9 4\n");
}

TEST(EvalLib, MemsetMemcmpStrlen) {
  expectExit(R"(
#include <string.h>
int main(void) {
  char a[8], b[8];
  memset(a, 7, 8);
  memset(b, 7, 8);
  if (memcmp(a, b, 8) != 0) return 1;
  b[3] = 8;
  if (memcmp(a, b, 8) >= 0) return 2;
  return (int)strlen("hello");
}
)",
             5);
}

TEST(EvalLib, ExitAndAbort) {
  Outcome O = run("#include <stdlib.h>\nint main(void){ exit(3); return 0; }");
  EXPECT_EQ(O.Kind, OutcomeKind::Exit);
  EXPECT_EQ(O.ExitCode, 3);
  Outcome A = run("#include <stdlib.h>\nint main(void){ abort(); }");
  EXPECT_EQ(A.Kind, OutcomeKind::Abort);
}

//===----------------------------------------------------------------------===//
// Static errors cite ISO clauses (§5.1: "identifies exactly what part of
// the standard is violated")
//===----------------------------------------------------------------------===//

TEST(EvalErrors, TypeErrorsAreCaught) {
  expectCompileError("int main(void){ int x; x(); return 0; }",
                     "not a function");
  expectCompileError("int main(void){ struct s *p; return p->x; }",
                     "incomplete");
  expectCompileError("int main(void){ return undeclared; }", "undeclared");
  expectCompileError("int main(void){ int *p; int x = p; return x; }",
                     "6.5.16.1");
  expectCompileError("int main(void){ 1 = 2; return 0; }", "lvalue");
  expectCompileError(
      "void f(void){} int main(void){ int x = f(); return x; }", "void");
}

TEST(EvalErrors, SwitchConstraints) {
  expectCompileError(
      "int main(void){ switch (1) { case 1: case 1: return 0; } }",
      "duplicate case");
}

TEST(EvalErrors, UnsupportedFeaturesRejectCleanly) {
  expectCompileError("int main(void){ float f = 1.0f; return 0; }",
                     "float");
  expectCompileError("volatile int x; int main(void){ return 0; }",
                     "volatile");
}

//===----------------------------------------------------------------------===//
// UB detection end to end
//===----------------------------------------------------------------------===//

TEST(EvalUB, MemoryUB) {
  expectUB("int main(void){ int a[3]; return a[5]; }",
           mem::UBKind::AccessOutOfBounds);
  expectUB("int main(void){ int *p = 0; *p = 1; return 0; }",
           mem::UBKind::AccessNull);
}

TEST(EvalUB, UnsequencedModification) {
  expectUB("int main(void){ int i = 0; i = i++ + 1; return i; }",
           mem::UBKind::UnsequencedRace);
  expectUB("int g; int main(void){ return (g = 1) + (g = 2); }",
           mem::UBKind::UnsequencedRace);
}

TEST(EvalUB, SequencedUsesAreFine) {
  // i = i + 1 is fine; so are both operands reading.
  expectExit("int main(void){ int i = 1; i = i + 1; return i + i; }", 4);
}

TEST(EvalUB, WriteToStringLiteral) {
  // 6.4.5p7: modifying a string literal is UB; literals are immutable
  // objects in every model instantiation.
  expectUB(R"(
int main(void) {
  char *s = "ro";
  s[0] = 88;
  return 0;
}
)",
           mem::UBKind::WriteToReadOnly);
  expectUB(R"(
#include <string.h>
int main(void) {
  char *s = "ro";
  memset(s, 0, 2);
  return 0;
}
)",
           mem::UBKind::WriteToReadOnly);
  // Reading them stays fine, and copies are writable.
  expectExit(R"(
#include <string.h>
int main(void) {
  char buf[4];
  strcpy(buf, "ro");
  buf[0] = 88;
  return buf[0] == 88 && "ro"[0] == 114 ? 0 : 1;
}
)",
             0);
}

//===----------------------------------------------------------------------===//
// Additional integration coverage
//===----------------------------------------------------------------------===//

TEST(EvalMore, PointerToPointer) {
  expectExit(R"(
int main(void) {
  int x = 1;
  int *p = &x;
  int **pp = &p;
  int ***ppp = &pp;
  ***ppp = 42;
  return x;
}
)",
             42);
}

TEST(EvalMore, VoidFunctionEarlyReturn) {
  expectExit(R"(
int g;
void maybe(int c) {
  if (c) return;
  g = 7;
}
int main(void) {
  maybe(1);
  if (g != 0) return 1;
  maybe(0);
  return g;
}
)",
             7);
}

TEST(EvalMore, ForwardDeclaredFunction) {
  expectExit(R"(
int later(int);
int main(void) { return later(20); }
int later(int x) { return x + 1; }
)",
             21);
}

TEST(EvalMore, ExternGlobalDeclaration) {
  expectExit(R"(
extern int shared;
int get(void) { return shared; }
int shared = 5;
int main(void) { return get(); }
)",
             5);
}

TEST(EvalMore, NestedUnionsAndStructs) {
  expectExit(R"(
struct header { char tag; };
union payload { int i; unsigned char raw[4]; };
struct packet { struct header h; union payload p; };
int main(void) {
  struct packet pk;
  pk.h.tag = 2;
  pk.p.i = 0x0A0B0C0D;
  return pk.p.raw[0] + pk.h.tag; /* 0x0D + 2 */
}
)",
             0x0D + 2);
}

TEST(EvalMore, CharArithmeticPromotions) {
  expectExit(R"(
int main(void) {
  char c = 127;
  c++;           /* computed at int, wraps on the store: -128 */
  return c == -128 ? 0 : 1;
}
)",
             0);
}

TEST(EvalMore, CommaInForHeader) {
  expectExit(R"(
int main(void) {
  int i, j, s = 0;
  for (i = 0, j = 10; i < j; i++, j--)
    s++;
  return s;
}
)",
             5);
}

TEST(EvalMore, TernaryChainsAndSideEffects) {
  expectExit(R"(
int g;
int bump(void) { return ++g; }
int main(void) {
  int r = g ? bump() : (g = 3);
  return r * 10 + g; /* 3, 3 */
}
)",
             33);
}

TEST(EvalMore, ArrayOfStringsViaPointers) {
  expectOut(R"(
#include <stdio.h>
int main(void) {
  const char *names[3] = {"one", "two", "three"};
  int i;
  for (i = 0; i < 3; i++)
    printf("%s ", names[i]);
  printf("\n");
  return 0;
}
)",
            "one two three \n");
}

TEST(EvalMore, BubbleSortEndToEnd) {
  expectOut(R"(
#include <stdio.h>
void sort(int *a, int n) {
  int i, j;
  for (i = 0; i < n - 1; i++)
    for (j = 0; j < n - 1 - i; j++)
      if (a[j] > a[j + 1]) {
        int t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
}
int main(void) {
  int a[6] = {5, 2, 9, 1, 5, 6};
  int i;
  sort(a, 6);
  for (i = 0; i < 6; i++)
    printf("%d", a[i]);
  printf("\n");
  return 0;
}
)",
            "125569\n");
}

TEST(EvalMore, LinkedListOnHeap) {
  expectExit(R"(
#include <stdlib.h>
struct node { int v; struct node *next; };
int main(void) {
  struct node *head = 0;
  int i, s = 0;
  for (i = 1; i <= 4; i++) {
    struct node *n = malloc(sizeof(struct node));
    n->v = i;
    n->next = head;
    head = n;
  }
  while (head) {
    struct node *d = head;
    s = s * 10 + head->v;
    head = head->next;
    free(d);
  }
  return s; /* 4321 mod 256 as exit code; compare directly */
}
)",
             4321 & 0xFFFFFFFF); // exit code is the raw int
}

TEST(EvalMore, StaticRecursionCounter) {
  expectExit(R"(
int depth(int n) {
  static int maxseen;
  if (n > maxseen) maxseen = n;
  if (n < 3) depth(n + 1);
  return maxseen;
}
int main(void) { return depth(0); }
)",
             3);
}

TEST(EvalMore, SizeofArrayParameterDecays) {
  // 6.7.6.3p7: an array parameter adjusts to a pointer.
  expectExit(R"(
unsigned long f(int a[10]) { return sizeof a; }
int main(void) { int x[10]; return (int)(f(x) == sizeof(int *)); }
)",
             1);
}

TEST(EvalMore, ModifyThroughConstCastAlias) {
  // const is parsed but layout-inert in our fragment; writing through a
  // non-const alias of a non-const object is defined.
  expectExit(R"(
int main(void) {
  int x = 1;
  const int *cp = &x;
  int *p = (int *)cp;
  *p = 2;
  return x;
}
)",
             2);
}

TEST(EvalMore, NegativeModuloAndDivisionTruncate) {
  expectExit("int main(void){ return (-7 / 2) * 10 + (-7 % 2); }",
             -31); // -3 * 10 + -1
}
