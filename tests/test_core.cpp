//===-- tests/test_core.cpp - Core AST, printer, rewrites, purity ---------===//

#include "core/Core.h"
#include "exec/Pipeline.h"

#include <gtest/gtest.h>

using namespace cerb;
using namespace cerb::core;

TEST(CoreValues, Constructors) {
  EXPECT_TRUE(Value::boolean(true).isTrue());
  EXPECT_FALSE(Value::boolean(false).isTrue());
  Value V = Value::specified(Value::integer(5));
  ASSERT_TRUE(V.isSpecified());
  EXPECT_EQ(V.Elems[0].IV.V, Int128(5));
  EXPECT_EQ(Value::unspecified(CType::intTy()).K, ValueKind::Unspecified);
}

TEST(CoreValues, MemRoundtrip) {
  mem::IntegerValue IV(42, mem::Provenance::alloc(3));
  mem::MemValue MV = valueToMem(CType::intTy(), Value::integer(IV));
  EXPECT_EQ(MV.Kind, mem::MemValueKind::Integer);
  Value Back = memToValue(MV);
  ASSERT_TRUE(Back.isSpecified());
  EXPECT_EQ(Back.Elems[0].IV.V, Int128(42));
  EXPECT_TRUE(Back.Elems[0].IV.Prov == mem::Provenance::alloc(3));
}

TEST(CoreValues, Rendering) {
  EXPECT_EQ(Value::integer(7).str(), "7");
  EXPECT_EQ(Value::boolean(true).str(), "True");
  EXPECT_EQ(Value::specified(Value::integer(1)).str(), "Specified(1)");
  EXPECT_EQ(Value::unspecified(CType::intTy()).str(),
            "Unspecified('int')");
}

TEST(CoreGrammar, SummaryMentionsAllSequencingForms) {
  std::string G = coreGrammarSummary();
  for (const char *Form :
       {"unseq", "let weak", "let strong", "let atomic", "indet", "bound",
        "nd(", "save", "run", "par", "wait", "Specified", "Unspecified",
        "create", "kill", "store", "load", "ptrdiff", "intFromPtr"})
    EXPECT_NE(G.find(Form), std::string::npos) << Form;
}

TEST(CorePrint, ElaboratedProgramMentionsKeyConstructs) {
  auto P = exec::compile(R"(
int g;
int main(void) {
  int x = 1;
  g = x + 1;
  return g;
}
)");
  ASSERT_TRUE(static_cast<bool>(P));
  std::string S = printProgram(*P);
  EXPECT_NE(S.find("create('int'"), std::string::npos);
  EXPECT_NE(S.find("store('int'"), std::string::npos);
  EXPECT_NE(S.find("load('int'"), std::string::npos);
  EXPECT_NE(S.find("let weak"), std::string::npos);
  EXPECT_NE(S.find("unseq("), std::string::npos);
  EXPECT_NE(S.find("kill("), std::string::npos);
  EXPECT_NE(S.find("return("), std::string::npos);
}

TEST(CorePrint, ShiftElaborationMatchesFig3Shape) {
  // Fig. 3: the elaboration of << contains the three undef cases and the
  // case split on Specified/Unspecified.
  auto P = exec::compile(R"(
int main(void) {
  int a = 1, b = 2;
  return a << b;
}
)");
  ASSERT_TRUE(static_cast<bool>(P));
  std::string S = printProgram(*P);
  EXPECT_NE(S.find("undef(Negative_shift)"), std::string::npos);
  EXPECT_NE(S.find("undef(Shift_too_large)"), std::string::npos);
  EXPECT_NE(S.find("undef(Exceptional_condition)"), std::string::npos);
  EXPECT_NE(S.find("Specified("), std::string::npos);
  EXPECT_NE(S.find("Unspecified(_)"), std::string::npos);
}

TEST(CoreCheck, ElaboratedProgramsAreWellFormed) {
  // Every program the elaboration produces must satisfy the Core purity
  // discipline (§5.2: the pure/effectful distinction).
  for (const char *Src : {
           "int main(void){ return 0; }",
           "int main(void){ int i; for (i=0;i<3;i++); return i; }",
           "int f(int x){ return x; } int main(void){ return f(1); }",
           "struct s { int a; }; int main(void){ struct s v = {1}; "
           "return v.a; }",
       }) {
    auto P = exec::compile(Src);
    ASSERT_TRUE(static_cast<bool>(P)) << Src;
    EXPECT_EQ(core::typeCheck(*P), std::nullopt) << Src;
  }
}

TEST(CoreRewrite, FoldsAndCounts) {
  auto R = exec::compileWithStats(R"(
int main(void) {
  int x = 1;
  return x;
}
)");
  ASSERT_TRUE(static_cast<bool>(R));
  // The rewrite runs without breaking the program:
  exec::RunOptions Opts;
  EXPECT_EQ(exec::runOnce(R->Prog, Opts).ExitCode, 1);
}

TEST(CoreClone, DeepCopyIsIndependent) {
  auto E = Expr::make(ExprKind::Binop);
  E->BOp = CoreBinop::Add;
  E->Kids.push_back(Expr::make(ExprKind::Val));
  E->Kids[0]->V = Value::integer(1);
  E->Kids.push_back(Expr::make(ExprKind::Val));
  E->Kids[1]->V = Value::integer(2);

  ExprPtr C = cloneExpr(*E);
  C->Kids[0]->V = Value::integer(99);
  EXPECT_EQ(E->Kids[0]->V.IV.V, Int128(1));
  EXPECT_EQ(C->Kids[1]->V.IV.V, Int128(2));
  EXPECT_EQ(C->K, ExprKind::Binop);
}

TEST(CorePurity, DetectsEffectInPureContext) {
  // Hand-build an ill-formed program: an action inside a pure let body.
  CoreProgram P;
  Symbol Main = P.Syms.create("main", ail::SymbolKind::Function);
  P.MainProc = Main;
  auto Load = Expr::make(ExprKind::Action);
  Load->Act = ActionKind::Load;
  Load->Cty = CType::intTy();
  Load->Kids.push_back(Expr::make(ExprKind::Val));
  auto PureLet = Expr::make(ExprKind::PureLet);
  PureLet->Pat = Pattern::wild();
  PureLet->Kids.push_back(std::move(Load)); // effect in pure position!
  PureLet->Kids.push_back(Expr::make(ExprKind::Val));
  auto Ret = Expr::make(ExprKind::Ret);
  Ret->Kids.push_back(std::move(PureLet));
  CoreProc Proc;
  Proc.Name = Main;
  Proc.ReturnTy = CType::intTy();
  Proc.Body = std::move(Ret);
  P.Procs.emplace(Main.Id, std::move(Proc));

  auto Err = core::typeCheck(P);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("pure context"), std::string::npos);
}

TEST(CorePatterns, Rendering) {
  ail::SymbolTable Syms;
  Symbol S = Syms.create("x", ail::SymbolKind::Object);
  EXPECT_EQ(Pattern::wild().str(Syms), "_");
  EXPECT_EQ(Pattern::sym(S).str(Syms), "x");
  EXPECT_EQ(Pattern::specified(Pattern::sym(S)).str(Syms), "Specified(x)");
  EXPECT_EQ(Pattern::tuple({Pattern::wild(), Pattern::sym(S)}).str(Syms),
            "(_, x)");
  EXPECT_EQ(Pattern::unspecified().str(Syms), "Unspecified(_)");
}

TEST(CoreScope, DetectsUnboundIdentifier) {
  CoreProgram P;
  Symbol Main = P.Syms.create("main", ail::SymbolKind::Function);
  Symbol Ghost = P.Syms.create("ghost", ail::SymbolKind::Object);
  P.MainProc = Main;
  auto Ret = Expr::make(ExprKind::Ret);
  auto Use = Expr::make(ExprKind::Sym);
  Use->Sym = Ghost; // never bound anywhere
  Ret->Kids.push_back(std::move(Use));
  CoreProc Proc;
  Proc.Name = Main;
  Proc.ReturnTy = CType::intTy();
  Proc.Body = std::move(Ret);
  P.Procs.emplace(Main.Id, std::move(Proc));

  auto Err = core::typeCheck(P);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("unbound"), std::string::npos);
  EXPECT_NE(Err->find("ghost"), std::string::npos);
}

TEST(CoreScope, DetectsRunToUnknownLabel) {
  CoreProgram P;
  Symbol Main = P.Syms.create("main", ail::SymbolKind::Function);
  Symbol Lbl = P.Syms.create("nowhere", ail::SymbolKind::Label);
  P.MainProc = Main;
  auto Run = Expr::make(ExprKind::Run);
  Run->Sym = Lbl; // no save for it
  CoreProc Proc;
  Proc.Name = Main;
  Proc.ReturnTy = CType::intTy();
  Proc.Body = std::move(Run);
  P.Procs.emplace(Main.Id, std::move(Proc));

  auto Err = core::typeCheck(P);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->find("unknown label"), std::string::npos);
}

TEST(CoreScope, PatternBindingScopesOverBodyOnly) {
  // let x = 1 in x  is fine; a use of x *outside* the let is not. The
  // whole-pipeline assertion: every elaborated program is lexically
  // scoped, including the block kill chains.
  for (const char *Src : {
           "int main(void){ int a = 1; { int b = a; a = b; } return a; }",
           "int main(void){ int i; for (i=0;i<2;i++){ int t=i; (void)t; } "
           "return i; }",
       }) {
    auto P = exec::compile(Src);
    ASSERT_TRUE(static_cast<bool>(P)) << Src;
    EXPECT_EQ(core::typeCheck(*P), std::nullopt) << Src;
  }
}
