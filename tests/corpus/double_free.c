/* Q83: free() twice (7.22.3.3). */

#include <stdlib.h>
int main(void) {
  int *p = malloc(4);
  free(p);
  free(p);
}
