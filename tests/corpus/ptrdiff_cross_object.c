/* Q34: Pointer subtraction across objects (6.5.6p9; the de facto model also forbids it, Q9). */

int x, y;
int main(void) {
  int d = (int)(&x - &y);
}
