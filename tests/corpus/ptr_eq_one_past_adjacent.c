/* Q2: &x+1 == &y with adjacent allocations: ISO permits the comparison but the result may consult provenance (Q2) — modelled as a nondeterministic choice; CHERI exact-equality compares metadata and answers 0. */

#include <stdio.h>
int y = 2, x = 1;
int main(void) {
  printf("%d\n", &x + 1 == &y);
}
