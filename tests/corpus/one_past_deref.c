/* Q32: Dereferencing one-past-the-end. */

int main(void) {
  int a[2] = {1, 2};
  return *(a + 2);
}
