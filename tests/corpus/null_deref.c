/* Q28: Dereferencing a null pointer. */

int main(void) {
  int *p = 0;
  return *p;
}
