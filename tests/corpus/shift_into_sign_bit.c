/* Q86: 1 << 31 at type int: 2^31 is not representable in int, so the signed left shift is UB (6.5.7p4) — under every model (it is an elaboration-level check, not a memory-model one). */

int main(void) {
  int one = 1;
  return one << 31 ? 1 : 0;
}
