/* CHERI-2: Materialising a pointer from a plain integer: no capability tag under CHERI; empty provenance under the de facto model. */

int main(void) {
  int *p = (int *)99999;
  return *p;
}
