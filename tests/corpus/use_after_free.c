/* Q43: Access through a freed malloc region. */

#include <stdlib.h>
int main(void) {
  int *p = malloc(sizeof(int));
  *p = 1;
  free(p);
  return *p;
}
