/* Q54: i++ + i++ (the classic). */

int main(void) {
  int i = 0;
  int r = i++ + i++;
}
