/* Q50: A flow-control choice on an unspecified value (§3: MSan does detect this one). */

int main(void) {
  int x;
  if (x)
  return 0;
}
