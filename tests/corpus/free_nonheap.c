/* Q84: free() of a non-heap object. */

#include <stdlib.h>
int x;
int main(void) {
  free(&x);
}
