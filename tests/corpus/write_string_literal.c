/* Q45: Modifying a string literal (6.4.5p7): UB under every model — the literal is an immutable implicitly allocated object (§5.1). */

int main(void) {
  char *s = "ro";
  s[0] = 88;
}
