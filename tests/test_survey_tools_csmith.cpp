//===-- tests/test_survey_tools_csmith.cpp --------------------------------===//
//
// Unit tests for the survey dataset (§1/§2), the analysis-tool profiles
// (§3), and the random-program generator + differential harness (§6).
//
//===----------------------------------------------------------------------===//

#include "csmith/Differential.h"
#include "csmith/Generator.h"
#include "exec/Pipeline.h"
#include "survey/Survey.h"
#include "tools/Profiles.h"

#include <gtest/gtest.h>

using namespace cerb;

//===----------------------------------------------------------------------===//
// Survey (§1, §2)
//===----------------------------------------------------------------------===//

TEST(Survey, RespondentCountMatchesPaper) {
  EXPECT_EQ(survey::info().Respondents, 323u);
  EXPECT_EQ(survey::info().QuestionCount, 15u);
  EXPECT_EQ(survey::info().FirstSurveyQuestions, 42u);
}

TEST(Survey, ExpertiseTableMatchesPaper) {
  const auto &Rows = survey::expertise();
  auto Find = [&](std::string_view Area) -> unsigned {
    for (const survey::ExpertiseRow &R : Rows)
      if (R.Area == Area)
        return R.Count;
    return 0;
  };
  EXPECT_EQ(Find("C applications programming"), 255u);
  EXPECT_EQ(Find("C systems programming"), 230u);
  EXPECT_EQ(Find("Linux developer"), 160u);
  EXPECT_EQ(Find("C or C++ standards committee member"), 8u);
  EXPECT_EQ(Find("GCC developer"), 15u);
  EXPECT_EQ(Find("Clang developer"), 26u);
  EXPECT_EQ(Find("Formal semantics"), 18u);
}

TEST(Survey, Q25PercentagesMatchPaper) {
  // §2.1: "yes: 191 (60%) only sometimes: 52 (16%), no: 31 (9%)..."
  const survey::SurveyQuestion *Q = survey::findSurveyQuestion("[7/15]");
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q->Answers[0].Count, 191u);
  EXPECT_EQ(survey::percentOf(*Q, Q->Answers[0]), 61u); // 191/315 rounds to 61
  EXPECT_EQ(Q->Answers[1].Count, 52u);
  EXPECT_EQ(survey::percentOf(*Q, Q->Answers[1]), 17u);
}

TEST(Survey, UnspecifiedValueQuestionIsBimodal) {
  // §2.4: "bimodal answers, split between (1) and (4)".
  const survey::SurveyQuestion *Q = survey::findSurveyQuestion("[2/15]");
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q->Answers[0].Count, 139u); // UB
  EXPECT_EQ(Q->Answers[3].Count, 112u); // stable value
  EXPECT_GT(Q->Answers[0].Count, Q->Answers[1].Count);
  EXPECT_GT(Q->Answers[3].Count, Q->Answers[1].Count);
}

TEST(Survey, OOBQuestionMajoritySaysYes) {
  // §2.2: "yes: 230 (73%)".
  const survey::SurveyQuestion *Q = survey::findSurveyQuestion("[9/15]");
  ASSERT_NE(Q, nullptr);
  EXPECT_EQ(Q->Answers[0].Count, 230u);
  EXPECT_GE(survey::percentOf(*Q, Q->Answers[0]), 73u);
}

TEST(Survey, RenderingIncludesPercentages) {
  const survey::SurveyQuestion *Q = survey::findSurveyQuestion("[11/15]");
  ASSERT_NE(Q, nullptr);
  std::string S = survey::renderQuestion(*Q);
  EXPECT_NE(S.find("243"), std::string::npos);
  EXPECT_NE(S.find("%"), std::string::npos);
  EXPECT_NE(survey::renderExpertise().find("323"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Tool profiles (§3)
//===----------------------------------------------------------------------===//

TEST(Tools, FourProfilesExist) {
  const auto &Ps = tools::profiles();
  ASSERT_EQ(Ps.size(), 4u);
  EXPECT_EQ(Ps[0].Name, "sanitizer");
  EXPECT_EQ(Ps[1].Name, "tis");
  EXPECT_EQ(Ps[2].Name, "kcc");
  EXPECT_EQ(Ps[3].Name, "defacto");
}

TEST(Tools, StrictnessOrderingMatchesSection3) {
  // §3's shape: the sanitiser profile flags the fewest tests, the
  // tis-like strict profile the most.
  auto CountFlagged = [](const tools::ToolProfile &P) {
    unsigned N = 0;
    for (const tools::ToolVerdict &V : tools::runTool(P))
      if (V.V == tools::Verdict::Flagged)
        ++N;
    return N;
  };
  unsigned San = CountFlagged(tools::profiles()[0]);
  unsigned Tis = CountFlagged(tools::profiles()[1]);
  unsigned Kcc = CountFlagged(tools::profiles()[2]);
  EXPECT_LT(San, Tis);
  EXPECT_LE(San, Kcc);
  EXPECT_LE(Kcc, Tis);
}

TEST(Tools, SanitizerSilentOnPaddingTests) {
  // §3: "All 13 of our structure-padding tests ... ran without any
  // sanitiser warnings" — our padding tests must be Silent under the
  // sanitiser profile.
  for (const tools::ToolVerdict &V : tools::runTool(tools::profiles()[0]))
    if (V.Test->Name.rfind("padding_", 0) == 0)
      EXPECT_EQ(V.V, tools::Verdict::Silent) << V.Test->Name;
}

TEST(Tools, TisFlagsUninitTests) {
  // §3: tis-interpreter flags "most of the unspecified-value tests".
  unsigned Flagged = 0, Total = 0;
  for (const tools::ToolVerdict &V : tools::runTool(tools::profiles()[1]))
    if (V.Test->Name.rfind("uninit_", 0) == 0) {
      ++Total;
      if (V.V == tools::Verdict::Flagged)
        ++Flagged;
    }
  EXPECT_GT(Total, 0u);
  EXPECT_GT(Flagged * 2, Total); // "most"
}

TEST(Tools, KccLenientOnPaddingStrictOnUninit) {
  const tools::ToolProfile &Kcc = tools::profiles()[2];
  for (const tools::ToolVerdict &V : tools::runTool(Kcc)) {
    if (V.Test->Name == "padding_uninit_memcmp")
      EXPECT_EQ(V.V, tools::Verdict::Silent);
    if (V.Test->Name == "uninit_copy")
      EXPECT_EQ(V.V, tools::Verdict::Flagged);
    if (V.Test->Name == "effective_char_array_storage")
      EXPECT_EQ(V.V, tools::Verdict::Silent); // "permitted some tests that
                                              // ISO effective types forbid"
  }
}

TEST(Tools, SummaryCoversAllCategoriesInSuite) {
  auto Vs = tools::runTool(tools::profiles()[0]);
  auto Sum = tools::summarize(Vs);
  unsigned Total = 0;
  for (const tools::CategoryFlags &C : Sum)
    Total += C.Tests;
  EXPECT_EQ(Total, Vs.size());
}

//===----------------------------------------------------------------------===//
// csmith-lite (§6)
//===----------------------------------------------------------------------===//

TEST(Csmith, GenerationIsDeterministic) {
  csmith::GenOptions O;
  O.Seed = 42;
  EXPECT_EQ(csmith::generateProgram(O), csmith::generateProgram(O));
  O.Seed = 43;
  EXPECT_NE(csmith::generateProgram(csmith::GenOptions{}),
            csmith::generateProgram(O));
}

TEST(Csmith, GeneratedProgramsCompileAndRunCleanly) {
  // Property sweep: every generated program must be accepted by the
  // pipeline and run to a normal exit with a checksum (UB-free by
  // construction, like Csmith).
  for (uint64_t Seed = 100; Seed < 120; ++Seed) {
    csmith::GenOptions O;
    O.Seed = Seed;
    std::string Src = csmith::generateProgram(O);
    auto R = exec::evaluateOnce(Src);
    ASSERT_TRUE(static_cast<bool>(R)) << "seed " << Seed << ": "
                                      << R.error().str() << "\n" << Src;
    EXPECT_EQ(R->Kind, exec::OutcomeKind::Exit)
        << "seed " << Seed << ": " << R->str();
    EXPECT_NE(R->Stdout.find("checksum = "), std::string::npos);
  }
}

TEST(Csmith, ChecksumIsModelIndependent) {
  // A UB-free program must behave identically under every memory model.
  csmith::GenOptions O;
  O.Seed = 7;
  std::string Src = csmith::generateProgram(O);
  std::string First;
  for (auto P : {mem::MemoryPolicy::concrete(), mem::MemoryPolicy::defacto(),
                 mem::MemoryPolicy::strictIso()}) {
    exec::RunOptions Opts;
    Opts.Policy = P;
    auto R = exec::evaluateOnce(Src, Opts);
    ASSERT_TRUE(static_cast<bool>(R));
    ASSERT_EQ(R->Kind, exec::OutcomeKind::Exit) << P.Name << ": " << R->str();
    if (First.empty())
      First = R->Stdout;
    else
      EXPECT_EQ(R->Stdout, First) << P.Name;
  }
}

TEST(Csmith, DifferentialAgreesWithHostCompiler) {
  if (!csmith::oracleAvailable())
    GTEST_SKIP() << "no host C compiler";
  csmith::GenOptions O;
  auto S = csmith::validateSeeds(/*FirstSeed=*/500, /*Count=*/5, O);
  EXPECT_EQ(S.Mismatch, 0u);
  EXPECT_GE(S.Agree, 4u); // allow one timeout, like the paper's tail
}
