//===-- tests/test_oracle.cpp - the batch oracle subsystem ----------------===//
//
// The oracle's three contracts: determinism across thread counts, one
// elaboration shared across the policy instantiations of a test
// (compile-once/run-many), and graceful budget degradation (path-budget
// trips sample randomly; wall-clock deadlines record `timed_out` without
// aborting the batch). Plus the policy registry and the report writers.
//
//===----------------------------------------------------------------------===//

#include "oracle/Oracle.h"
#include "oracle/Report.h"
#include "oracle/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace cerb;
using namespace cerb::oracle;

namespace {

Job makeJob(std::string Name, std::string Source, mem::MemoryPolicy Policy,
            Mode M = Mode::Exhaustive) {
  Job J;
  J.Name = std::move(Name);
  J.Source = std::move(Source);
  J.Policy = std::move(Policy);
  J.ExecMode = M;
  return J;
}

} // namespace

//===----------------------------------------------------------------------===//
// Policy registry
//===----------------------------------------------------------------------===//

TEST(PolicyRegistry, CanonicalNamesResolve) {
  for (const std::string &N : mem::MemoryPolicy::presetNames()) {
    auto P = mem::MemoryPolicy::byName(N);
    ASSERT_TRUE(P.has_value()) << N;
    EXPECT_EQ(P->Name, N);
  }
}

TEST(PolicyRegistry, AliasesResolve) {
  EXPECT_EQ(mem::MemoryPolicy::byName("strict")->Name, "strict-iso");
  EXPECT_EQ(mem::MemoryPolicy::byName("strictIso")->Name, "strict-iso");
  EXPECT_EQ(mem::MemoryPolicy::byName("iso")->Name, "strict-iso");
  EXPECT_EQ(mem::MemoryPolicy::byName("de-facto")->Name, "defacto");
}

TEST(PolicyRegistry, UnknownNameIsNullopt) {
  EXPECT_FALSE(mem::MemoryPolicy::byName("").has_value());
  EXPECT_FALSE(mem::MemoryPolicy::byName("tis").has_value());
}

TEST(PolicyRegistry, AllPresetsMatchesPresetNames) {
  auto All = mem::MemoryPolicy::allPresets();
  ASSERT_EQ(All.size(), mem::MemoryPolicy::presetNames().size());
  for (size_t I = 0; I < All.size(); ++I)
    EXPECT_EQ(All[I].Name, mem::MemoryPolicy::presetNames()[I]);
}

//===----------------------------------------------------------------------===//
// Thread pool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 100);
  // wait() is re-usable: a second batch on the same pool.
  for (int I = 0; I < 10; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 110);
}

//===----------------------------------------------------------------------===//
// Compile cache
//===----------------------------------------------------------------------===//

TEST(CompileCache, OneElaborationSharedAcrossPolicies) {
  const char *Src = "int main(void){ int x = 3; return x + 4; }";
  std::vector<Job> Jobs;
  for (const mem::MemoryPolicy &P : mem::MemoryPolicy::allPresets())
    Jobs.push_back(makeJob("shared", Src, P));

  OracleConfig Cfg;
  Cfg.Threads = 4;
  BatchResult B = Oracle(Cfg).run(Jobs);

  EXPECT_EQ(B.Stats.CacheMisses, 1u); // one distinct source => one compile
  EXPECT_EQ(B.Stats.CacheHits, Jobs.size() - 1);
  unsigned Hits = 0;
  for (const JobResult &R : B.Results) {
    EXPECT_EQ(R.Status, JobStatus::Ok);
    ASSERT_EQ(R.Outcomes.Distinct.size(), 1u);
    EXPECT_EQ(R.Outcomes.Distinct[0].ExitCode, 7);
    if (R.CacheHit)
      ++Hits;
  }
  EXPECT_EQ(Hits, Jobs.size() - 1); // exactly one job paid the compile
}

TEST(CompileCache, CompileErrorIsCachedAndReported) {
  CompileCache Cache;
  bool Hit = true;
  auto U1 = Cache.get("int main(void){ return ; }", &Hit);
  EXPECT_FALSE(Hit);
  EXPECT_FALSE(U1->ok());
  EXPECT_FALSE(U1->Error.empty());
  auto U2 = Cache.get("int main(void){ return ; }", &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(U1.get(), U2.get());
}

TEST(CompileCache, DistinctSourcesGetDistinctUnits) {
  CompileCache Cache;
  auto A = Cache.get("int main(void){ return 1; }");
  auto B = Cache.get("int main(void){ return 2; }");
  EXPECT_NE(A->SourceHash, B->SourceHash);
  EXPECT_EQ(Cache.misses(), 2u);
  EXPECT_EQ(Cache.hits(), 0u);
}

//===----------------------------------------------------------------------===//
// Determinism: identical per-job outcomes for any thread count
//===----------------------------------------------------------------------===//

TEST(OracleDeterminism, SameOutcomesAtJobs1AndJobs8) {
  // A representative slice of the semantic suite across all policies —
  // including nondeterministic tests (unseq orderings, Q2 provenance
  // choice points) where exploration order could plausibly leak.
  const auto &Suite = defacto::testSuite();
  std::vector<defacto::TestCase> Slice(
      Suite.begin(), Suite.begin() + std::min<size_t>(Suite.size(), 24));

  JobBudget Budget;
  std::vector<Job> Jobs = Oracle::suiteJobs(
      Slice, mem::MemoryPolicy::allPresets(), Budget, Mode::Exhaustive);

  OracleConfig One;
  One.Threads = 1;
  OracleConfig Eight;
  Eight.Threads = 8;
  BatchResult B1 = Oracle(One).run(Jobs);
  BatchResult B8 = Oracle(Eight).run(Jobs);

  ASSERT_EQ(B1.Results.size(), B8.Results.size());
  for (size_t I = 0; I < B1.Results.size(); ++I) {
    const JobResult &R1 = B1.Results[I];
    const JobResult &R8 = B8.Results[I];
    EXPECT_EQ(R1.Name, R8.Name);
    EXPECT_EQ(R1.PolicyName, R8.PolicyName);
    EXPECT_EQ(R1.Status, R8.Status) << R1.Name << " / " << R1.PolicyName;
    EXPECT_EQ(R1.Check, R8.Check) << R1.Name << " / " << R1.PolicyName;
    EXPECT_EQ(R1.Outcomes.PathsExplored, R8.Outcomes.PathsExplored);
    ASSERT_EQ(R1.Outcomes.Distinct.size(), R8.Outcomes.Distinct.size())
        << R1.Name << " / " << R1.PolicyName;
    for (size_t K = 0; K < R1.Outcomes.Distinct.size(); ++K)
      EXPECT_EQ(R1.Outcomes.Distinct[K].str(), R8.Outcomes.Distinct[K].str());
  }
  // The aggregate snapshot (minus wall-clock) agrees too.
  EXPECT_EQ(B1.Stats.Ok, B8.Stats.Ok);
  EXPECT_EQ(B1.Stats.ChecksPassed, B8.Stats.ChecksPassed);
  EXPECT_EQ(B1.Stats.ChecksFailed, B8.Stats.ChecksFailed);
  EXPECT_EQ(B1.Stats.PathsExplored, B8.Stats.PathsExplored);
  EXPECT_EQ(B1.Stats.CacheMisses, B8.Stats.CacheMisses);
  EXPECT_EQ(B1.Stats.CacheHits, B8.Stats.CacheHits);
  EXPECT_EQ(B1.Stats.UBTally, B8.Stats.UBTally);

  // And the serialized no-timings reports are byte-identical (the
  // acceptance contract the CLI exposes as --no-timings).
  ReportOptions RO;
  RO.IncludeTimings = false;
  EXPECT_EQ(toJson(B1, RO), toJson(B8, RO));
}

//===----------------------------------------------------------------------===//
// Budgets: deadlines and path-budget degradation
//===----------------------------------------------------------------------===//

TEST(OracleBudgets, LoopingProgramTimesOutGracefully) {
  const char *Loop = "int main(void){ for (;;) {} return 0; }";
  std::vector<Job> Jobs;
  Job J = makeJob("looper", Loop, mem::MemoryPolicy::defacto(), Mode::Once);
  J.Budget.DeadlineMs = 50;
  J.Budget.Limits.MaxSteps = ~0ull; // only the deadline can stop it
  Jobs.push_back(J);
  // A healthy job after the looper: the batch must carry on past it.
  Jobs.push_back(makeJob("after", "int main(void){ return 1; }",
                         mem::MemoryPolicy::defacto()));

  BatchResult B = Oracle(OracleConfig{2}).run(Jobs);
  EXPECT_EQ(B.Results[0].Status, JobStatus::TimedOut);
  ASSERT_EQ(B.Results[0].Outcomes.Distinct.size(), 1u);
  EXPECT_EQ(B.Results[0].Outcomes.Distinct[0].Kind,
            exec::OutcomeKind::Timeout);
  EXPECT_EQ(B.Results[1].Status, JobStatus::Ok);
  EXPECT_EQ(B.Stats.TimedOut, 1u);
  EXPECT_EQ(B.Stats.Ok, 1u);
}

TEST(OracleBudgets, ExhaustiveDeadlineStopsBetweenPaths) {
  // Deep race-free nondeterminism: each call's arguments are unsequenced
  // effectful evaluations on distinct objects, so every ordering is allowed
  // — 2^24 decision vectors; each path is fast but the exploration as a
  // whole cannot finish inside the deadline.
  std::string Src = "void t(int x, int y) { }\nint main(void){\n"
                    "  int a = 0, b = 0;\n";
  for (int I = 0; I < 24; ++I)
    Src += "  t(a++, b++);\n";
  Src += "  return 0;\n}\n";
  Job J = makeJob("wide", Src, mem::MemoryPolicy::defacto());
  J.Budget.MaxPaths = ~0ull;
  J.Budget.DeadlineMs = 100;
  BatchResult B = Oracle(OracleConfig{1}).run({J});
  EXPECT_EQ(B.Results[0].Status, JobStatus::TimedOut);
  EXPECT_TRUE(B.Results[0].Outcomes.TimedOut);
  EXPECT_GE(B.Results[0].Outcomes.PathsExplored, 1u);
}

TEST(OracleBudgets, PathBudgetTripDegradesToRandomSampling) {
  // Race-free unsequenced pairs whose exploration exceeds a tiny budget.
  std::string Src = "void t(int x, int y) { }\nint main(void){\n"
                    "  int a = 0, b = 0;\n";
  for (int I = 0; I < 6; ++I)
    Src += "  t(a++, b++);\n";
  Src += "  return 0;\n}\n";
  Job J = makeJob("trippy", Src, mem::MemoryPolicy::defacto());
  J.Budget.MaxPaths = 4;
  J.Budget.FallbackSamples = 8;
  BatchResult B = Oracle(OracleConfig{1}).run({J});
  const JobResult &R = B.Results[0];
  EXPECT_EQ(R.Status, JobStatus::Degraded);
  EXPECT_TRUE(R.Outcomes.Truncated);
  EXPECT_EQ(R.RandomSamples, 8u);
  EXPECT_EQ(R.Outcomes.PathsExplored, 4u + 8u);
  // Degraded sampling is still deterministic (seeded from the job).
  BatchResult B2 = Oracle(OracleConfig{4}).run({J});
  EXPECT_EQ(B2.Results[0].Outcomes.PathsExplored, R.Outcomes.PathsExplored);
  ASSERT_EQ(B2.Results[0].Outcomes.Distinct.size(),
            R.Outcomes.Distinct.size());
}

TEST(OracleBudgets, CompileErrorIsRecordedNotFatal) {
  std::vector<Job> Jobs;
  Jobs.push_back(makeJob("bad", "int main(void){ return ; }",
                         mem::MemoryPolicy::defacto()));
  Jobs.push_back(makeJob("good", "int main(void){ return 0; }",
                         mem::MemoryPolicy::defacto()));
  BatchResult B = Oracle(OracleConfig{2}).run(Jobs);
  EXPECT_EQ(B.Results[0].Status, JobStatus::CompileError);
  EXPECT_FALSE(B.Results[0].CompileError.empty());
  EXPECT_EQ(B.Results[1].Status, JobStatus::Ok);
  EXPECT_EQ(B.Stats.CompileErrors, 1u);
}

//===----------------------------------------------------------------------===//
// Expectations (the suite-as-oracle path)
//===----------------------------------------------------------------------===//

TEST(OracleSuite, SuiteJobsCarryExpectationsAndPass) {
  const auto &Suite = defacto::testSuite();
  std::vector<defacto::TestCase> Slice(Suite.begin(), Suite.begin() + 8);
  std::vector<Job> Jobs = Oracle::suiteJobs(
      Slice, mem::MemoryPolicy::allPresets(), JobBudget());
  ASSERT_EQ(Jobs.size(), Slice.size() * 4);
  BatchResult B = Oracle(OracleConfig{4}).run(Jobs);
  for (const JobResult &R : B.Results)
    if (R.Check != JobResult::Verdict::None)
      EXPECT_EQ(R.Check, JobResult::Verdict::Pass)
          << R.Name << " / " << R.PolicyName;
  EXPECT_EQ(B.Stats.ChecksFailed, 0u);
  EXPECT_GT(B.Stats.ChecksPassed, 0u);
}

TEST(OracleSuite, UBTallyMatchesUndefOutcomes) {
  const char *Src = "int main(void){ int *p = 0; return *p; }";
  BatchResult B = Oracle(OracleConfig{1}).run(
      {makeJob("null-deref", Src, mem::MemoryPolicy::defacto())});
  const JobResult &R = B.Results[0];
  ASSERT_EQ(R.Outcomes.Distinct.size(), 1u);
  EXPECT_EQ(R.Outcomes.Distinct[0].Kind, exec::OutcomeKind::Undef);
  ASSERT_EQ(R.UBTally.size(), 1u);
  EXPECT_EQ(R.UBTally.begin()->first, mem::UBKind::AccessNull);
  EXPECT_EQ(B.Stats.UBTally.at(std::string(
                mem::ubName(mem::UBKind::AccessNull))),
            1u);
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

TEST(OracleReport, JsonShapeAndEscaping) {
  BatchResult B = Oracle(OracleConfig{1}).run(
      {makeJob("quote\"name", "int main(void){ return 0; }",
               mem::MemoryPolicy::defacto())});
  std::string J = toJson(B);
  EXPECT_NE(J.find("\"schema\": \"cerb-oracle-report/1\""), std::string::npos);
  EXPECT_NE(J.find("\"quote\\\"name\""), std::string::npos);
  EXPECT_NE(J.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(J.find("\"timings_ms\""), std::string::npos);

  ReportOptions NoTimes;
  NoTimes.IncludeTimings = false;
  std::string J2 = toJson(B, NoTimes);
  EXPECT_EQ(J2.find("\"timings_ms\""), std::string::npos);
  EXPECT_EQ(J2.find("\"wall_ms\""), std::string::npos);
  EXPECT_EQ(J2.find("\"cache_hit\""), std::string::npos);
}

TEST(OracleReport, JUnitCountsFailuresAndErrors) {
  std::vector<Job> Jobs;
  Jobs.push_back(makeJob("ok", "int main(void){ return 0; }",
                         mem::MemoryPolicy::defacto()));
  Jobs.push_back(makeJob("broken", "int main(void){ return ; }",
                         mem::MemoryPolicy::defacto()));
  Job Failing = makeJob("wrong", "int main(void){ return 1; }",
                        mem::MemoryPolicy::defacto());
  Failing.Expected = defacto::Expect::defined(""); // expects exit 0
  Jobs.push_back(Failing);

  BatchResult B = Oracle(OracleConfig{2}).run(Jobs);
  std::string X = toJUnitXml(B);
  EXPECT_NE(X.find("<?xml version=\"1.0\""), std::string::npos);
  EXPECT_NE(X.find("tests=\"3\" failures=\"1\" errors=\"1\""),
            std::string::npos);
  EXPECT_NE(X.find("<error message="), std::string::npos);
  EXPECT_NE(X.find("<failure message="), std::string::npos);
  EXPECT_NE(X.find("classname=\"cerb.defacto\""), std::string::npos);
}

//===----------------------------------------------------------------------===//
// compileFile / readSourceFile
//===----------------------------------------------------------------------===//

TEST(PipelineFile, CompileFileRoundtrip) {
  std::string Path = ::testing::TempDir() + "/cerb_oracle_t.c";
  ASSERT_TRUE(writeTextFile(Path, "int main(void){ return 11; }"));
  auto Prog = exec::compileFile(Path);
  ASSERT_TRUE(static_cast<bool>(Prog));
  exec::Outcome O = exec::runOnce(*Prog, exec::RunOptions());
  EXPECT_EQ(O.ExitCode, 11);
}

TEST(PipelineFile, MissingFileIsStaticError) {
  auto Prog = exec::compileFile("/nonexistent/cerb_oracle.c");
  ASSERT_FALSE(static_cast<bool>(Prog));
  EXPECT_NE(Prog.error().str().find("cannot open"), std::string::npos);
}
