//===-- bench/table_csmith_validation.cpp - the §6 validation table -------===//
///
/// \file
/// T7 — the differential-validation experiment of §6: random UB-free
/// programs run under our semantics and under the host C compiler, with
/// agree / timeout / fail counts for a "small" batch and a "larger" batch.
/// Paper numbers to compare shape against:
///   small Csmith tests:  556 of 561 agree, 5 time out (>5 min)
///   larger (40-600 line): 316 of 400 agree, 56 time out, 6 fail
///
//===----------------------------------------------------------------------===//

#include "csmith/Differential.h"

#include <cstdio>

int main() {
  using namespace cerb::csmith;

  std::printf("T7: differential validation against the host C compiler "
              "(§6)\n");
  std::printf("============================================================\n");
  if (!oracleAvailable())
    std::printf("NOTE: no host C compiler found; oracle column will be "
                "unavailable.\n");

  struct Batch {
    const char *Name;
    unsigned Count;
    unsigned Size;
    uint64_t StepBudget;
    const char *PaperShape;
  };
  // The step budget plays the paper's wall-clock timeout role; the small
  // batch gets a generous budget, the larger one a tighter one so that the
  // timeout tail appears, as in the paper.
  const Batch Batches[] = {
      {"small", 60, 12, 20'000'000, "paper: 556/561 agree, 5 timeout"},
      {"larger", 25, 60, 8'000'000, "paper: 316/400 agree, 56 timeout, 6 fail"},
  };

  for (const Batch &B : Batches) {
    GenOptions O;
    O.Size = B.Size;
    auto S = validateSeeds(/*FirstSeed=*/1000, B.Count, O, B.StepBudget);
    std::printf("\nbatch '%s' (%u programs, size knob %u):\n", B.Name,
                B.Count, B.Size);
    std::printf("  agree    %3u / %u\n", S.Agree, S.Total);
    std::printf("  timeout  %3u\n", S.Timeout);
    std::printf("  fail     %3u\n", S.Fail);
    std::printf("  mismatch %3u   <- must be 0: a mismatch is a bug in the "
                "semantics\n",
                S.Mismatch);
    if (S.OracleUnavailable)
      std::printf("  oracle unavailable for %u programs\n",
                  S.OracleUnavailable);
    std::printf("  (%s)\n", B.PaperShape);
  }
  std::printf("\nshape check: a large agreement majority with a small "
              "timeout tail that\ngrows with program size, and zero "
              "mismatches.\n");
  return 0;
}
