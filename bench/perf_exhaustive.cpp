//===-- bench/perf_exhaustive.cpp - exhaustive-exploration blowup (P1) ----===//
///
/// \file
/// §6: "that very looseness makes execution combinatorially challenging".
/// This bench measures the number of explored paths and wall time of
/// exhaustive mode as the number of indeterminately sequenced calls per
/// expression grows. Our dynamics explores the orders consistent with the
/// expression tree's unseq nesting (2^(n-1) for a left-nested n-operand
/// sum; see DESIGN.md on the indeterminate-sequencing approximation), so
/// the series must grow exponentially while single-path evaluation of the
/// same programs stays linear.
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"
#include "support/Format.h"

#include <benchmark/benchmark.h>

using namespace cerb;

namespace {

/// A program whose main expression has N indeterminately sequenced calls.
std::string nCallsProgram(unsigned N) {
  std::string Src = "int g;\nint s(int v) { g = v; return 0; }\n"
                    "int main(void) { int r = ";
  for (unsigned I = 0; I < N; ++I) {
    if (I)
      Src += " + ";
    Src += fmt("s({0})", I);
  }
  Src += "; return r; }\n";
  return Src;
}

} // namespace

static void BM_ExhaustivePaths(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  auto Prog = exec::compile(nCallsProgram(N));
  exec::RunOptions Opts;
  Opts.MaxPaths = 100000;
  uint64_t Paths = 0;
  for (auto _ : State) {
    auto R = exec::runExhaustive(*Prog, Opts);
    Paths = R.PathsExplored;
    benchmark::DoNotOptimize(R);
  }
  State.counters["paths"] =
      benchmark::Counter(static_cast<double>(Paths));
}
BENCHMARK(BM_ExhaustivePaths)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

static void BM_SinglePathSameProgram(benchmark::State &State) {
  // The comparison series: one pseudorandom path of the same programs
  // stays flat — the blowup is exploration, not evaluation.
  unsigned N = static_cast<unsigned>(State.range(0));
  auto Prog = exec::compile(nCallsProgram(N));
  exec::RunOptions Opts;
  uint64_t Seed = 1;
  for (auto _ : State) {
    exec::Outcome O = exec::runRandom(*Prog, Opts, Seed++);
    benchmark::DoNotOptimize(O);
  }
}
BENCHMARK(BM_SinglePathSameProgram)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
