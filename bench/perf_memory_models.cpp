//===-- bench/perf_memory_models.cpp - memory-model overhead (P3) ---------===//
///
/// \file
/// The cost of the memory-model parameterisation: the same pointer-heavy
/// program executed under each instantiation. Provenance tracking, the
/// strict checks, and CHERI capability checks each add work per access;
/// the series quantifies it.
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <benchmark/benchmark.h>

using namespace cerb;

namespace {

const char *PointerHeavy = R"(
#include <stdlib.h>
#include <string.h>
int main(void) {
  int i, j;
  int *slots[8];
  for (i = 0; i < 8; i++) {
    slots[i] = malloc(16 * sizeof(int));
    for (j = 0; j < 16; j++)
      slots[i][j] = i * j;
  }
  int acc = 0;
  for (i = 0; i < 8; i++)
    for (j = 0; j < 16; j++)
      acc += *(slots[i] + j);
  for (i = 0; i < 7; i++)
    memcpy(slots[i + 1], slots[i], 16 * sizeof(int));
  for (i = 0; i < 8; i++)
    free(slots[i]);
  return acc & 0x7f;
}
)";

void runUnder(benchmark::State &State, mem::MemoryPolicy Policy) {
  auto Prog = exec::compile(PointerHeavy);
  if (!Prog) {
    State.SkipWithError("compile failed");
    return;
  }
  exec::RunOptions Opts;
  Opts.Policy = std::move(Policy);
  for (auto _ : State) {
    exec::Outcome O = exec::runOnce(*Prog, Opts);
    benchmark::DoNotOptimize(O);
  }
}

} // namespace

static void BM_Concrete(benchmark::State &S) {
  runUnder(S, mem::MemoryPolicy::concrete());
}
static void BM_DeFacto(benchmark::State &S) {
  runUnder(S, mem::MemoryPolicy::defacto());
}
static void BM_StrictIso(benchmark::State &S) {
  runUnder(S, mem::MemoryPolicy::strictIso());
}
static void BM_Cheri(benchmark::State &S) {
  runUnder(S, mem::MemoryPolicy::cheri());
}

BENCHMARK(BM_Concrete)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DeFacto)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StrictIso)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cheri)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
