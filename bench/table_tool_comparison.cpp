//===-- bench/table_tool_comparison.cpp - the §3 tool comparison ----------===//
///
/// \file
/// T5 — runs the de facto test suite under the three analysis-tool
/// semantic profiles (sanitiser-like, tis-like, KCC-like) plus the
/// candidate de facto model, and prints the flag matrix. The §3 shape to
/// reproduce: "these three groups of tools gave radically different
/// results" — the sanitiser profile is silent on padding and most
/// unspecified-value tests, the tis profile flags most of them, KCC is
/// strict on scalar uninitialised reads but lenient on padding bytes and
/// effective types.
///
//===----------------------------------------------------------------------===//

#include "tools/Profiles.h"

#include <cstdio>
#include <map>

int main() {
  using namespace cerb;
  using namespace cerb::tools;

  std::printf("T5: analysis-tool semantic profiles over the de facto "
              "suite (§3)\n");
  std::printf("================================================================"
              "\n");
  for (const ToolProfile &P : profiles())
    std::printf("  %-10s emulates %-35s\n             %s\n",
                P.Name.c_str(), P.Emulates.c_str(), P.Discipline.c_str());
  std::printf("\n");

  // Verdict per test per profile.
  std::map<std::string, std::map<std::string, Verdict>> Matrix;
  std::map<std::string, unsigned> FlagTotals;
  std::vector<std::string> Order;
  for (const ToolProfile &P : profiles()) {
    auto Vs = runTool(P);
    for (const ToolVerdict &V : Vs) {
      if (!Matrix.count(V.Test->Name))
        Order.push_back(V.Test->Name);
      Matrix[V.Test->Name][P.Name] = V.V;
      if (V.V == Verdict::Flagged)
        ++FlagTotals[P.Name];
    }
  }

  auto Cell = [](Verdict V) {
    switch (V) {
    case Verdict::Silent: return ".";
    case Verdict::Flagged: return "F";
    case Verdict::Failed: return "x";
    }
    return "?";
  };

  std::printf("%-36s %-9s %-5s %-5s %-7s\n", "test (F=flagged, .=silent)",
              "sanitizer", "tis", "kcc", "defacto");
  for (const std::string &Name : Order) {
    auto &Row = Matrix[Name];
    std::printf("%-36s %-9s %-5s %-5s %-7s\n", Name.c_str(),
                Cell(Row["sanitizer"]), Cell(Row["tis"]), Cell(Row["kcc"]),
                Cell(Row["defacto"]));
  }

  std::printf("\nflag totals: sanitizer=%u tis=%u kcc=%u defacto=%u (of %zu "
              "tests)\n",
              FlagTotals["sanitizer"], FlagTotals["tis"], FlagTotals["kcc"],
              FlagTotals["defacto"], Order.size());
  std::printf("\nshape checks (§3):\n");
  std::printf("  sanitizer < tis (the sanitisers are deliberately liberal): "
              "%s\n",
              FlagTotals["sanitizer"] < FlagTotals["tis"] ? "OK" : "VIOLATED");
  std::printf("  kcc between (strict uninit, lenient padding/effective "
              "types): %s\n",
              FlagTotals["sanitizer"] <= FlagTotals["kcc"] &&
                      FlagTotals["kcc"] <= FlagTotals["tis"]
                  ? "OK"
                  : "VIOLATED");
  return 0;
}
