//===-- bench/perf_serve.cpp - daemon cold/warm latency and QPS (P6) ------===//
///
/// \file
/// Proves the serve subsystem's acceptance bound: a warm-cache repeat of an
/// evaluation query must return the *byte-identical* response at >= 50x
/// lower latency than its cold run. Also measures the disk tier (a
/// restarted daemon on the same cache directory) and sustained warm QPS
/// from concurrent clients — the batch-throughput story behind running a
/// de facto survey as a service instead of a process per question.
///
/// Everything runs in-process over a real unix-domain socket, so the
/// numbers include framing, socket hops, and admission control — the
/// daemon as deployed, not the cache in isolation. Emits BENCH_serve.json
/// (bench_json.h) and exits nonzero when the 50x bound fails, like
/// perf_trace_overhead does for its 2% bound.
///
//===----------------------------------------------------------------------===//

#include "bench_json.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "support/FaultInjector.h"

#include "support/Json.h"

#include <benchmark/benchmark.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace cerb;
using namespace cerb::serve;

namespace {

namespace fs = std::filesystem;

/// Eight indeterminately sequenced call pairs over interpreted work: the
/// cold evaluation explores 2^8 = 256 paths per policy, across all four
/// presets — hundreds of milliseconds of honest work to amortize.
const char *coldWorkSource() {
  return R"(
#include <stdio.h>
unsigned g;
int work(int v) {
  unsigned i, s = 0;
  for (i = 0; i < 40u; i++)
    s += (i ^ (unsigned)v) + (s >> 3);
  g = g * 10u + (unsigned)v + (s & 0u);
  return 0;
}
int main(void) {
  work(1) + work(2);
  work(3) + work(4);
  work(5) + work(6);
  work(7) + work(8);
  work(1) + work(3);
  work(2) + work(5);
  work(4) + work(7);
  work(6) + work(8);
  printf("%u\n", g);
  return 0;
}
)";
}

void BM_SerializeEvalRequest(benchmark::State &State) {
  EvalRequest Q;
  Q.Id = "bench";
  Q.Source = "int main(void) { return 0; }\n";
  Q.Policies = mem::MemoryPolicy::allPresets();
  for (auto _ : State) {
    std::string F = serializeEvalRequest(Q);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_SerializeEvalRequest);

/// The disarmed fault hook on the serve hot path: one relaxed atomic load.
/// The P6 summary gates its aggregate cost at < 2% of a warm query.
void BM_DisarmedFaultCheck(benchmark::State &State) {
  int E = 0;
  for (auto _ : State) {
    bool F = fault::shouldFail("socket.read", &E);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_DisarmedFaultCheck);

void BM_CacheKeyMaterial(benchmark::State &State) {
  EvalRequest Q;
  Q.Source = "int main(void) { return 0; }\n";
  Q.Policies = mem::MemoryPolicy::allPresets();
  for (auto _ : State) {
    std::string K = cacheKeyMaterial(Q);
    benchmark::DoNotOptimize(K);
  }
}
BENCHMARK(BM_CacheKeyMaterial);

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

struct Scratch {
  fs::path Dir;
  Scratch() {
    Dir = fs::temp_directory_path() /
          ("cerb-perf-serve-" + std::to_string(::getpid()));
    std::error_code EC;
    fs::remove_all(Dir, EC);
    fs::create_directories(Dir);
  }
  ~Scratch() {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  std::string str(const char *Leaf) const { return (Dir / Leaf).string(); }
};

EvalRequest benchRequest() {
  EvalRequest Q;
  Q.Id = "bench";
  Q.Name = "perf_serve";
  Q.Source = coldWorkSource();
  Q.Policies = mem::MemoryPolicy::allPresets();
  Q.Limits.MaxPaths = 512;
  return Q;
}

//===----------------------------------------------------------------------===//
// Worker-pool scaling row
//===----------------------------------------------------------------------===//

/// A distinct, moderately expensive cold source per index: one policy,
/// 2^5 = 32 indeterminately sequenced orders — enough CPU per eval that
/// cold-miss throughput is compute-bound (what extra worker *processes*
/// can actually scale), not socket-bound.
std::string scalingSource(int I) {
  return "unsigned g;\n"
         "int work(int v) {\n"
         "  unsigned i, s = 0;\n"
         "  for (i = 0; i < 32u; i++) s += (i ^ (unsigned)v) + (s >> 3);\n"
         "  g = g * 10u + (unsigned)v + (s & 0u);\n"
         "  return 0;\n"
         "}\n"
         "int main(void) {\n"
         "  work(1) + work(2);\n"
         "  work(3) + work(4);\n"
         "  work(5) + work(6);\n"
         "  work(7) + work(8);\n"
         "  work(" +
         std::to_string(1 + I % 8) + ") + work(" +
         std::to_string(9 + I % 4) +
         ");\n"
         "  return (int)(g & 3u);\n"
         "}\n";
}

EvalRequest scalingRequest(int I) {
  EvalRequest Q;
  Q.Id = "scale-" + std::to_string(I);
  Q.Name = "scale";
  Q.Source = scalingSource(I);
  Q.Policies = {mem::MemoryPolicy::defacto()};
  Q.Limits.MaxPaths = 64;
  return Q;
}

/// One spawned `cerb serve --workers N` pool over the real binary — the
/// scaling row must cross process boundaries, which the in-process Daemon
/// cannot.
struct SpawnedPool {
  pid_t Pid = -1;
  std::string Sock;

  static SpawnedPool spawn(const std::string &Sock, const std::string &Cache,
                           unsigned Workers) {
    SpawnedPool P;
    P.Sock = Sock;
    std::string W = std::to_string(Workers);
    P.Pid = ::fork();
    if (P.Pid == 0) {
      ::execl(CERB_BIN, CERB_BIN, "serve", "--socket", Sock.c_str(),
              "--jobs", "1", "--workers", W.c_str(), "--cache-dir",
              Cache.c_str(), "--restart-base-ms", "5", (char *)nullptr);
      std::_Exit(127);
    }
    return P;
  }

  /// True once every worker slot reports "running" in aggregated stats.
  bool waitAllRunning(unsigned Workers, int DeadlineMs) {
    auto T0 = std::chrono::steady_clock::now();
    while (msSince(T0) < DeadlineMs) {
      RetryPolicy RP;
      RP.MaxAttempts = 1;
      RP.CallTimeoutMs = 3000;
      auto C = Client::connect(Sock, -1, RP);
      if (C) {
        auto Raw = C->call(serializeSimpleRequest(Op::Stats, "ready"));
        if (Raw) {
          auto Root = json::parse(*Raw);
          const json::Value *Wk =
              Root ? (Root->get("stats") ? Root->get("stats")->get("workers")
                                         : nullptr)
                   : nullptr;
          if (Wk && Wk->K == json::Value::Kind::Array &&
              Wk->Arr.size() == Workers) {
            unsigned Running = 0;
            for (const json::Value &Row : Wk->Arr)
              if (const json::Value *S = Row.get("state"))
                Running += S->asString() == "running";
            if (Running == Workers)
              return true;
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  }

  /// SIGTERM + reap; true on a clean exit-0 drain.
  bool shutdown() {
    if (Pid <= 0)
      return false;
    ::kill(Pid, SIGTERM);
    auto T0 = std::chrono::steady_clock::now();
    while (msSince(T0) < 30000) {
      int St = 0;
      pid_t R = ::waitpid(Pid, &St, WNOHANG);
      if (R == Pid) {
        Pid = -1;
        return WIFEXITED(St) && WEXITSTATUS(St) == 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    ::kill(Pid, SIGKILL);
    ::waitpid(Pid, nullptr, 0);
    Pid = -1;
    return false;
  }

  ~SpawnedPool() {
    if (Pid > 0) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, nullptr, 0);
    }
  }
};

struct ScalingRow {
  double Qps1 = 0, Qps4 = 0, Scaling = 0;
  bool ByteIdentical = false;
  bool Completed = false;
  bool Gated = false; ///< the >= 2.5x bound is enforced (host has >= 4 cores)
  bool Pass = false;
};

/// Cold-miss QPS of the pool at --workers 1 vs --workers 4: K distinct
/// sources, a 4-client fleet, a fresh cache directory per run so every
/// request is a true miss. Every reply is byte-compared against an
/// in-process golden daemon — multi-process must change throughput, never
/// bytes.
ScalingRow workerScalingRow(Scratch &T) {
  ScalingRow Row;
  constexpr int K = 24;
  constexpr int FleetSize = 4;

  std::vector<std::string> Frames;
  for (int I = 0; I < K; ++I)
    Frames.push_back(serializeEvalRequest(scalingRequest(I)));

  // Golden bytes from the in-process daemon (single process by
  // construction).
  std::vector<std::string> Golden(K);
  {
    DaemonConfig Cfg;
    Cfg.SocketPath = T.str("gold.sock");
    Cfg.Threads = FleetSize;
    Cfg.Cache.Dir.clear();
    Daemon D(std::move(Cfg));
    if (!D.start())
      return Row;
    auto C = Client::connect(T.str("gold.sock"));
    if (!C)
      return Row;
    for (int I = 0; I < K; ++I) {
      auto R = C->call(Frames[I]);
      if (!R)
        return Row;
      Golden[I] = *R;
    }
    D.requestDrain();
    D.waitUntilDrained();
  }

  bool AllIdentical = true, AllCompleted = true, DrainedClean = true;
  auto RunPool = [&](unsigned Workers, const char *Tag) -> double {
    SpawnedPool P = SpawnedPool::spawn(T.str((std::string("pool-") + Tag +
                                              ".sock")
                                                 .c_str()),
                                       T.str((std::string("cache-") + Tag)
                                                 .c_str()),
                                       Workers);
    if (!P.waitAllRunning(Workers, 30000)) {
      AllCompleted = false;
      return 0;
    }
    std::atomic<int> Next{0};
    std::atomic<bool> Ok{true}, Identical{true};
    auto T0 = std::chrono::steady_clock::now();
    std::vector<std::thread> Fleet;
    for (int F = 0; F < FleetSize; ++F)
      Fleet.emplace_back([&] {
        RetryPolicy RP;
        RP.MaxAttempts = 6;
        RP.BaseDelayMs = 2;
        RP.MaxDelayMs = 50;
        RP.TotalDeadlineMs = 120000;
        RP.CallTimeoutMs = 60000;
        auto C = Client::connect(P.Sock, -1, RP);
        while (true) {
          int I = Next.fetch_add(1);
          if (I >= K)
            return;
          if (!C)
            C = Client::connect(P.Sock, -1, RP);
          auto R = C ? C->callRetry(Frames[I])
                     : Expected<std::string>(err("no connection"));
          if (!R) {
            Ok.store(false);
            continue;
          }
          if (*R != Golden[I])
            Identical.store(false);
        }
      });
    for (std::thread &Th : Fleet)
      Th.join();
    double WallMs = msSince(T0);
    AllCompleted = AllCompleted && Ok.load();
    AllIdentical = AllIdentical && Identical.load();
    DrainedClean = DrainedClean && P.shutdown();
    return WallMs > 0 ? K / (WallMs / 1000.0) : 0;
  };

  Row.Qps1 = RunPool(1, "w1");
  Row.Qps4 = RunPool(4, "w4");
  Row.Scaling = Row.Qps1 > 0 ? Row.Qps4 / Row.Qps1 : 0;
  Row.ByteIdentical = AllIdentical;
  Row.Completed = AllCompleted && DrainedClean;
  Row.Gated = std::thread::hardware_concurrency() >= 4;
  Row.Pass = Row.Completed && Row.ByteIdentical &&
             (!Row.Gated || Row.Scaling >= 2.5);
  return Row;
}

int serveSummary() {
  std::printf("\nP6 summary: evaluation daemon cold/warm latency\n");
  Scratch T;

  DaemonConfig Cfg;
  Cfg.SocketPath = T.str("d.sock");
  Cfg.Cache.Dir = T.str("cache");
  Daemon D(std::move(Cfg));
  auto Started = D.start();
  if (!Started) {
    std::fprintf(stderr, "perf_serve: %s\n", Started.error().str().c_str());
    return 1;
  }
  auto ClientOr = Client::connect(T.str("d.sock"));
  if (!ClientOr) {
    std::fprintf(stderr, "perf_serve: %s\n", ClientOr.error().str().c_str());
    return 1;
  }
  Client &C = *ClientOr;
  std::string Frame = serializeEvalRequest(benchRequest());

  // Cold: the full pipeline (parse -> elaborate -> 4 policies x 256-path
  // exhaustive exploration) plus framing.
  auto T0 = std::chrono::steady_clock::now();
  auto Cold = C.call(Frame);
  double ColdMs = msSince(T0);
  if (!Cold) {
    std::fprintf(stderr, "perf_serve: cold query failed\n");
    return 1;
  }

  // Warm: best-of-N memory-tier replays (the steady-state repeat query).
  double WarmMs = 1e100;
  bool WarmIdentical = true;
  constexpr int WarmRuns = 32;
  for (int I = 0; I < WarmRuns; ++I) {
    T0 = std::chrono::steady_clock::now();
    auto Warm = C.call(Frame);
    WarmMs = std::min(WarmMs, msSince(T0));
    WarmIdentical = WarmIdentical && Warm && *Warm == *Cold;
  }

  // Sustained warm QPS from 4 concurrent client connections.
  constexpr int QpsClients = 4, QpsPerClient = 64;
  std::atomic<bool> QpsOk{true};
  T0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Threads;
    for (int I = 0; I < QpsClients; ++I)
      Threads.emplace_back([&] {
        auto Conn = Client::connect(T.str("d.sock"));
        if (!Conn) {
          QpsOk.store(false);
          return;
        }
        for (int J = 0; J < QpsPerClient; ++J) {
          auto R = Conn->call(Frame);
          if (!R || *R != *Cold)
            QpsOk.store(false);
        }
      });
    for (auto &Th : Threads)
      Th.join();
  }
  double QpsWallMs = msSince(T0);
  double Qps = QpsWallMs > 0
                   ? (QpsClients * QpsPerClient) / (QpsWallMs / 1000.0)
                   : 0;

  D.requestDrain();
  D.waitUntilDrained();

  // Disk tier: a restarted daemon on the same cache directory answers the
  // repeat from the object store, still byte-identically.
  double DiskMs = 1e100;
  bool DiskIdentical = false;
  {
    DaemonConfig Cfg2;
    Cfg2.SocketPath = T.str("d2.sock");
    Cfg2.Cache.Dir = T.str("cache");
    Daemon D2(std::move(Cfg2));
    if (!D2.start()) {
      std::fprintf(stderr, "perf_serve: restart failed\n");
      return 1;
    }
    auto C2 = Client::connect(T.str("d2.sock"));
    if (!C2) {
      std::fprintf(stderr, "perf_serve: reconnect failed\n");
      return 1;
    }
    // The first repeat is the actual disk read (later ones would hit the
    // promoted memory entry).
    auto TD = std::chrono::steady_clock::now();
    auto Disk = C2->call(Frame);
    DiskMs = msSince(TD);
    DiskIdentical = Disk && *Disk == *Cold;
    D2.requestDrain();
    D2.waitUntilDrained();
  }

  // Disarmed fault-hook overhead: the injection points stay compiled into
  // the serve hot path, so their cost when *no* schedule is armed is part
  // of the acceptance bound. Measure the per-check cost directly and
  // charge a warm query generously (32 checks: every socket read/write on
  // both sides plus the cache probes) — the total must stay under 2% of
  // the measured warm latency.
  double DisarmedNs;
  {
    constexpr int Checks = 1 << 22;
    int E = 0;
    bool Sink = false;
    T0 = std::chrono::steady_clock::now();
    for (int I = 0; I < Checks; ++I)
      Sink ^= fault::shouldFail("socket.read", &E);
    benchmark::DoNotOptimize(Sink);
    DisarmedNs = msSince(T0) * 1e6 / Checks;
  }
  constexpr double ChecksPerWarmQuery = 32.0;
  double DisarmedOverheadPct =
      WarmMs > 0 ? (DisarmedNs * ChecksPerWarmQuery) / (WarmMs * 1e6) * 100.0
                 : 0;
  bool FaultHookCheap = DisarmedOverheadPct < 2.0;

  // Batch row: a 64-test shared-source suite against the same (warm)
  // daemon, three ways. The pre-batch workflow is one `cerb query` per
  // test — dial, eval, hang up — so that is the sequential baseline the
  // >= 5x bound is against: the batch replaces 64 dials (each spawning a
  // daemon reader thread) and 64 request frames carrying the same source
  // with one connection and one frame. The persistent-connection
  // sequential loop (keep one socket, 64 round trips) is reported too:
  // it isolates how much of the win is pipelining vs connection setup.
  constexpr int SuiteN = 64;
  double SeqMs = 1e100, SeqKeepMs = 1e100, BatchMs = 1e100;
  bool BatchIdentical = true;
  {
    DaemonConfig Cfg3;
    Cfg3.SocketPath = T.str("d3.sock");
    Daemon D3(std::move(Cfg3));
    if (!D3.start()) {
      std::fprintf(stderr, "perf_serve: batch daemon failed\n");
      return 1;
    }
    auto C3 = Client::connect(T.str("d3.sock"));
    if (!C3) {
      std::fprintf(stderr, "perf_serve: batch connect failed\n");
      return 1;
    }
    std::vector<EvalRequest> Suite;
    std::vector<std::string> Frames;
    for (int I = 0; I < SuiteN; ++I) {
      EvalRequest Q;
      Q.Id = "s" + std::to_string(I);
      Q.Name = "suite-" + std::to_string(I);
      Q.Source = coldWorkSource(); // shared across the whole suite
      Q.Policies = {mem::MemoryPolicy::defacto()};
      Q.ExecMode = oracle::Mode::Random;
      Q.Seed = 1 + I;
      Q.Limits.MaxPaths = 4;
      Frames.push_back(serializeEvalRequest(Q));
      Suite.push_back(std::move(Q));
    }
    // Cold pass to fill the result cache; the row compares warm suites
    // (the steady state of re-running a suite against a daemon).
    auto Cold3 = C3->callBatch(Suite);
    if (!Cold3) {
      std::fprintf(stderr, "perf_serve: cold batch failed: %s\n",
                   Cold3.error().str().c_str());
      return 1;
    }
    constexpr int Reps = 5;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      // Row 1: the pre-batch workflow — a fresh dial per request.
      auto TS = std::chrono::steady_clock::now();
      for (int I = 0; I < SuiteN; ++I) {
        auto Q = Client::connect(T.str("d3.sock"));
        bool OkOne = false;
        if (Q) {
          auto R = Q->call(Frames[I]);
          OkOne = R && *R == Cold3->Raw[I];
        }
        BatchIdentical = BatchIdentical && OkOne;
      }
      SeqMs = std::min(SeqMs, msSince(TS));
      // Row 2: sequential round trips on one kept connection.
      TS = std::chrono::steady_clock::now();
      for (int I = 0; I < SuiteN; ++I) {
        auto R = C3->call(Frames[I]);
        BatchIdentical = BatchIdentical && R && *R == Cold3->Raw[I];
      }
      SeqKeepMs = std::min(SeqKeepMs, msSince(TS));
      // Row 3: the whole suite as one pipelined batch frame.
      TS = std::chrono::steady_clock::now();
      auto B = C3->callBatch(Suite);
      BatchMs = std::min(BatchMs, msSince(TS));
      BatchIdentical = BatchIdentical && B && B->Raw == Cold3->Raw;
    }
    D3.requestDrain();
    D3.waitUntilDrained();
  }
  double SeqQps = SeqMs > 0 ? SuiteN / (SeqMs / 1000.0) : 0;
  double SeqKeepQps = SeqKeepMs > 0 ? SuiteN / (SeqKeepMs / 1000.0) : 0;
  double BatchQps = BatchMs > 0 ? SuiteN / (BatchMs / 1000.0) : 0;
  double BatchSpeedup = BatchMs > 0 ? SeqMs / BatchMs : 0;
  bool BatchFast = BatchSpeedup >= 5.0;

  // Worker-pool scaling row: cold-miss QPS at --workers 4 vs --workers 1
  // over the real binary. The >= 2.5x bound is enforced only on hosts
  // with >= 4 cores (process-level parallelism cannot beat the core
  // count); byte-identity and zero drops are enforced everywhere.
  ScalingRow Workers = workerScalingRow(T);

  double Speedup = WarmMs > 0 ? ColdMs / WarmMs : 0;
  bool Pass = WarmIdentical && DiskIdentical && QpsOk.load() &&
              Speedup >= 50.0 && FaultHookCheap && BatchIdentical &&
              BatchFast && Workers.Pass;

  std::printf("  cold evaluation:   %8.2f ms\n", ColdMs);
  std::printf("  warm repeat:       %8.4f ms (best of %d)  %.0fx\n", WarmMs,
              WarmRuns, Speedup);
  std::printf("  disk-tier repeat:  %8.4f ms (restarted daemon)\n", DiskMs);
  std::printf("  sustained warm:    %8.0f queries/s (%d clients)\n", Qps,
              QpsClients);
  std::printf("  byte-identical: warm=%s disk=%s concurrent=%s\n",
              WarmIdentical ? "yes" : "NO", DiskIdentical ? "yes" : "NO",
              QpsOk.load() ? "yes" : "NO");
  std::printf("  disarmed fault hook: %6.2f ns/check (%.4f%% of a warm "
              "query at %gx/call)\n",
              DisarmedNs, DisarmedOverheadPct, ChecksPerWarmQuery);
  std::printf("  warm speedup bound (>= 50x): %s\n",
              Speedup >= 50.0 ? "PASS" : "FAIL");
  std::printf("  disarmed fault overhead bound (< 2%%): %s\n",
              FaultHookCheap ? "PASS" : "FAIL");
  std::printf("  suite of %d (warm): eval-per-dial %8.2f ms (%7.0f q/s)  "
              "eval-per-call %8.2f ms (%7.0f q/s)\n",
              SuiteN, SeqMs, SeqQps, SeqKeepMs, SeqKeepQps);
  std::printf("  suite of %d (warm): one batch     %8.2f ms (%7.0f q/s)  "
              "%.1fx vs eval-per-dial\n",
              SuiteN, BatchMs, BatchQps, BatchSpeedup);
  std::printf("  batch byte-identical to sequential: %s\n",
              BatchIdentical ? "yes" : "NO");
  std::printf("  batch suite speedup bound (>= 5x): %s\n",
              BatchFast ? "PASS" : "FAIL");
  std::printf("  worker pool (cold misses): --workers 1 %7.1f q/s   "
              "--workers 4 %7.1f q/s   %.2fx\n",
              Workers.Qps1, Workers.Qps4, Workers.Scaling);
  std::printf("  worker pool byte-identical to single-process: %s\n",
              Workers.ByteIdentical ? "yes" : "NO");
  std::printf("  worker scaling bound (>= 2.5x at 4 cores): %s\n",
              !Workers.Gated   ? (Workers.Completed ? "SKIP (< 4 cores)"
                                                    : "FAIL (pool run)")
              : Workers.Pass   ? "PASS"
                               : "FAIL");

  benchjson::Emitter E("serve");
  E.metric("cold_ms", ColdMs);
  E.metric("warm_ms", WarmMs);
  E.metric("disk_warm_ms", DiskMs);
  E.metric("warm_speedup", Speedup);
  E.metric("sustained_qps", Qps);
  E.metric("disarmed_fault_ns_per_check", DisarmedNs);
  E.metric("disarmed_fault_overhead_pct", DisarmedOverheadPct);
  E.metric("warm_byte_identical", WarmIdentical);
  E.metric("disk_byte_identical", DiskIdentical);
  E.metric("concurrent_byte_identical", QpsOk.load());
  E.metric("batch_suite_n", double(SuiteN));
  E.metric("batch_seq_ms", SeqMs);
  E.metric("batch_seq_keepalive_ms", SeqKeepMs);
  E.metric("batch_ms", BatchMs);
  E.metric("batch_seq_qps", SeqQps);
  E.metric("batch_seq_keepalive_qps", SeqKeepQps);
  E.metric("batch_qps", BatchQps);
  E.metric("batch_speedup", BatchSpeedup);
  E.metric("batch_byte_identical", BatchIdentical);
  E.metric("workers_qps_1", Workers.Qps1);
  E.metric("workers_qps_4", Workers.Qps4);
  E.metric("workers_scaling", Workers.Scaling);
  E.metric("workers_byte_identical", Workers.ByteIdentical);
  E.metric("workers_scaling_gated", Workers.Gated);
  E.metric("pass", Pass);
  E.write("BENCH_serve.json");

  return Pass ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return serveSummary();
}
