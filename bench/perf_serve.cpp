//===-- bench/perf_serve.cpp - daemon cold/warm latency and QPS (P6) ------===//
///
/// \file
/// Proves the serve subsystem's acceptance bound: a warm-cache repeat of an
/// evaluation query must return the *byte-identical* response at >= 50x
/// lower latency than its cold run. Also measures the disk tier (a
/// restarted daemon on the same cache directory) and sustained warm QPS
/// from concurrent clients — the batch-throughput story behind running a
/// de facto survey as a service instead of a process per question.
///
/// Everything runs in-process over a real unix-domain socket, so the
/// numbers include framing, socket hops, and admission control — the
/// daemon as deployed, not the cache in isolation. Emits BENCH_serve.json
/// (bench_json.h) and exits nonzero when the 50x bound fails, like
/// perf_trace_overhead does for its 2% bound.
///
//===----------------------------------------------------------------------===//

#include "bench_json.h"
#include "serve/Client.h"
#include "serve/Daemon.h"
#include "support/FaultInjector.h"

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

using namespace cerb;
using namespace cerb::serve;

namespace {

namespace fs = std::filesystem;

/// Eight indeterminately sequenced call pairs over interpreted work: the
/// cold evaluation explores 2^8 = 256 paths per policy, across all four
/// presets — hundreds of milliseconds of honest work to amortize.
const char *coldWorkSource() {
  return R"(
#include <stdio.h>
unsigned g;
int work(int v) {
  unsigned i, s = 0;
  for (i = 0; i < 40u; i++)
    s += (i ^ (unsigned)v) + (s >> 3);
  g = g * 10u + (unsigned)v + (s & 0u);
  return 0;
}
int main(void) {
  work(1) + work(2);
  work(3) + work(4);
  work(5) + work(6);
  work(7) + work(8);
  work(1) + work(3);
  work(2) + work(5);
  work(4) + work(7);
  work(6) + work(8);
  printf("%u\n", g);
  return 0;
}
)";
}

void BM_SerializeEvalRequest(benchmark::State &State) {
  EvalRequest Q;
  Q.Id = "bench";
  Q.Source = "int main(void) { return 0; }\n";
  Q.Policies = mem::MemoryPolicy::allPresets();
  for (auto _ : State) {
    std::string F = serializeEvalRequest(Q);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_SerializeEvalRequest);

/// The disarmed fault hook on the serve hot path: one relaxed atomic load.
/// The P6 summary gates its aggregate cost at < 2% of a warm query.
void BM_DisarmedFaultCheck(benchmark::State &State) {
  int E = 0;
  for (auto _ : State) {
    bool F = fault::shouldFail("socket.read", &E);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_DisarmedFaultCheck);

void BM_CacheKeyMaterial(benchmark::State &State) {
  EvalRequest Q;
  Q.Source = "int main(void) { return 0; }\n";
  Q.Policies = mem::MemoryPolicy::allPresets();
  for (auto _ : State) {
    std::string K = cacheKeyMaterial(Q);
    benchmark::DoNotOptimize(K);
  }
}
BENCHMARK(BM_CacheKeyMaterial);

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

struct Scratch {
  fs::path Dir;
  Scratch() {
    Dir = fs::temp_directory_path() /
          ("cerb-perf-serve-" + std::to_string(::getpid()));
    std::error_code EC;
    fs::remove_all(Dir, EC);
    fs::create_directories(Dir);
  }
  ~Scratch() {
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }
  std::string str(const char *Leaf) const { return (Dir / Leaf).string(); }
};

EvalRequest benchRequest() {
  EvalRequest Q;
  Q.Id = "bench";
  Q.Name = "perf_serve";
  Q.Source = coldWorkSource();
  Q.Policies = mem::MemoryPolicy::allPresets();
  Q.Limits.MaxPaths = 512;
  return Q;
}

int serveSummary() {
  std::printf("\nP6 summary: evaluation daemon cold/warm latency\n");
  Scratch T;

  DaemonConfig Cfg;
  Cfg.SocketPath = T.str("d.sock");
  Cfg.Cache.Dir = T.str("cache");
  Daemon D(std::move(Cfg));
  auto Started = D.start();
  if (!Started) {
    std::fprintf(stderr, "perf_serve: %s\n", Started.error().str().c_str());
    return 1;
  }
  auto ClientOr = Client::connect(T.str("d.sock"));
  if (!ClientOr) {
    std::fprintf(stderr, "perf_serve: %s\n", ClientOr.error().str().c_str());
    return 1;
  }
  Client &C = *ClientOr;
  std::string Frame = serializeEvalRequest(benchRequest());

  // Cold: the full pipeline (parse -> elaborate -> 4 policies x 256-path
  // exhaustive exploration) plus framing.
  auto T0 = std::chrono::steady_clock::now();
  auto Cold = C.call(Frame);
  double ColdMs = msSince(T0);
  if (!Cold) {
    std::fprintf(stderr, "perf_serve: cold query failed\n");
    return 1;
  }

  // Warm: best-of-N memory-tier replays (the steady-state repeat query).
  double WarmMs = 1e100;
  bool WarmIdentical = true;
  constexpr int WarmRuns = 32;
  for (int I = 0; I < WarmRuns; ++I) {
    T0 = std::chrono::steady_clock::now();
    auto Warm = C.call(Frame);
    WarmMs = std::min(WarmMs, msSince(T0));
    WarmIdentical = WarmIdentical && Warm && *Warm == *Cold;
  }

  // Sustained warm QPS from 4 concurrent client connections.
  constexpr int QpsClients = 4, QpsPerClient = 64;
  std::atomic<bool> QpsOk{true};
  T0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Threads;
    for (int I = 0; I < QpsClients; ++I)
      Threads.emplace_back([&] {
        auto Conn = Client::connect(T.str("d.sock"));
        if (!Conn) {
          QpsOk.store(false);
          return;
        }
        for (int J = 0; J < QpsPerClient; ++J) {
          auto R = Conn->call(Frame);
          if (!R || *R != *Cold)
            QpsOk.store(false);
        }
      });
    for (auto &Th : Threads)
      Th.join();
  }
  double QpsWallMs = msSince(T0);
  double Qps = QpsWallMs > 0
                   ? (QpsClients * QpsPerClient) / (QpsWallMs / 1000.0)
                   : 0;

  D.requestDrain();
  D.waitUntilDrained();

  // Disk tier: a restarted daemon on the same cache directory answers the
  // repeat from the object store, still byte-identically.
  double DiskMs = 1e100;
  bool DiskIdentical = false;
  {
    DaemonConfig Cfg2;
    Cfg2.SocketPath = T.str("d2.sock");
    Cfg2.Cache.Dir = T.str("cache");
    Daemon D2(std::move(Cfg2));
    if (!D2.start()) {
      std::fprintf(stderr, "perf_serve: restart failed\n");
      return 1;
    }
    auto C2 = Client::connect(T.str("d2.sock"));
    if (!C2) {
      std::fprintf(stderr, "perf_serve: reconnect failed\n");
      return 1;
    }
    // The first repeat is the actual disk read (later ones would hit the
    // promoted memory entry).
    auto TD = std::chrono::steady_clock::now();
    auto Disk = C2->call(Frame);
    DiskMs = msSince(TD);
    DiskIdentical = Disk && *Disk == *Cold;
    D2.requestDrain();
    D2.waitUntilDrained();
  }

  // Disarmed fault-hook overhead: the injection points stay compiled into
  // the serve hot path, so their cost when *no* schedule is armed is part
  // of the acceptance bound. Measure the per-check cost directly and
  // charge a warm query generously (32 checks: every socket read/write on
  // both sides plus the cache probes) — the total must stay under 2% of
  // the measured warm latency.
  double DisarmedNs;
  {
    constexpr int Checks = 1 << 22;
    int E = 0;
    bool Sink = false;
    T0 = std::chrono::steady_clock::now();
    for (int I = 0; I < Checks; ++I)
      Sink ^= fault::shouldFail("socket.read", &E);
    benchmark::DoNotOptimize(Sink);
    DisarmedNs = msSince(T0) * 1e6 / Checks;
  }
  constexpr double ChecksPerWarmQuery = 32.0;
  double DisarmedOverheadPct =
      WarmMs > 0 ? (DisarmedNs * ChecksPerWarmQuery) / (WarmMs * 1e6) * 100.0
                 : 0;
  bool FaultHookCheap = DisarmedOverheadPct < 2.0;

  // Batch row: a 64-test shared-source suite against the same (warm)
  // daemon, three ways. The pre-batch workflow is one `cerb query` per
  // test — dial, eval, hang up — so that is the sequential baseline the
  // >= 5x bound is against: the batch replaces 64 dials (each spawning a
  // daemon reader thread) and 64 request frames carrying the same source
  // with one connection and one frame. The persistent-connection
  // sequential loop (keep one socket, 64 round trips) is reported too:
  // it isolates how much of the win is pipelining vs connection setup.
  constexpr int SuiteN = 64;
  double SeqMs = 1e100, SeqKeepMs = 1e100, BatchMs = 1e100;
  bool BatchIdentical = true;
  {
    DaemonConfig Cfg3;
    Cfg3.SocketPath = T.str("d3.sock");
    Daemon D3(std::move(Cfg3));
    if (!D3.start()) {
      std::fprintf(stderr, "perf_serve: batch daemon failed\n");
      return 1;
    }
    auto C3 = Client::connect(T.str("d3.sock"));
    if (!C3) {
      std::fprintf(stderr, "perf_serve: batch connect failed\n");
      return 1;
    }
    std::vector<EvalRequest> Suite;
    std::vector<std::string> Frames;
    for (int I = 0; I < SuiteN; ++I) {
      EvalRequest Q;
      Q.Id = "s" + std::to_string(I);
      Q.Name = "suite-" + std::to_string(I);
      Q.Source = coldWorkSource(); // shared across the whole suite
      Q.Policies = {mem::MemoryPolicy::defacto()};
      Q.ExecMode = oracle::Mode::Random;
      Q.Seed = 1 + I;
      Q.Limits.MaxPaths = 4;
      Frames.push_back(serializeEvalRequest(Q));
      Suite.push_back(std::move(Q));
    }
    // Cold pass to fill the result cache; the row compares warm suites
    // (the steady state of re-running a suite against a daemon).
    auto Cold3 = C3->callBatch(Suite);
    if (!Cold3) {
      std::fprintf(stderr, "perf_serve: cold batch failed: %s\n",
                   Cold3.error().str().c_str());
      return 1;
    }
    constexpr int Reps = 5;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      // Row 1: the pre-batch workflow — a fresh dial per request.
      auto TS = std::chrono::steady_clock::now();
      for (int I = 0; I < SuiteN; ++I) {
        auto Q = Client::connect(T.str("d3.sock"));
        bool OkOne = false;
        if (Q) {
          auto R = Q->call(Frames[I]);
          OkOne = R && *R == Cold3->Raw[I];
        }
        BatchIdentical = BatchIdentical && OkOne;
      }
      SeqMs = std::min(SeqMs, msSince(TS));
      // Row 2: sequential round trips on one kept connection.
      TS = std::chrono::steady_clock::now();
      for (int I = 0; I < SuiteN; ++I) {
        auto R = C3->call(Frames[I]);
        BatchIdentical = BatchIdentical && R && *R == Cold3->Raw[I];
      }
      SeqKeepMs = std::min(SeqKeepMs, msSince(TS));
      // Row 3: the whole suite as one pipelined batch frame.
      TS = std::chrono::steady_clock::now();
      auto B = C3->callBatch(Suite);
      BatchMs = std::min(BatchMs, msSince(TS));
      BatchIdentical = BatchIdentical && B && B->Raw == Cold3->Raw;
    }
    D3.requestDrain();
    D3.waitUntilDrained();
  }
  double SeqQps = SeqMs > 0 ? SuiteN / (SeqMs / 1000.0) : 0;
  double SeqKeepQps = SeqKeepMs > 0 ? SuiteN / (SeqKeepMs / 1000.0) : 0;
  double BatchQps = BatchMs > 0 ? SuiteN / (BatchMs / 1000.0) : 0;
  double BatchSpeedup = BatchMs > 0 ? SeqMs / BatchMs : 0;
  bool BatchFast = BatchSpeedup >= 5.0;

  double Speedup = WarmMs > 0 ? ColdMs / WarmMs : 0;
  bool Pass = WarmIdentical && DiskIdentical && QpsOk.load() &&
              Speedup >= 50.0 && FaultHookCheap && BatchIdentical &&
              BatchFast;

  std::printf("  cold evaluation:   %8.2f ms\n", ColdMs);
  std::printf("  warm repeat:       %8.4f ms (best of %d)  %.0fx\n", WarmMs,
              WarmRuns, Speedup);
  std::printf("  disk-tier repeat:  %8.4f ms (restarted daemon)\n", DiskMs);
  std::printf("  sustained warm:    %8.0f queries/s (%d clients)\n", Qps,
              QpsClients);
  std::printf("  byte-identical: warm=%s disk=%s concurrent=%s\n",
              WarmIdentical ? "yes" : "NO", DiskIdentical ? "yes" : "NO",
              QpsOk.load() ? "yes" : "NO");
  std::printf("  disarmed fault hook: %6.2f ns/check (%.4f%% of a warm "
              "query at %gx/call)\n",
              DisarmedNs, DisarmedOverheadPct, ChecksPerWarmQuery);
  std::printf("  warm speedup bound (>= 50x): %s\n",
              Speedup >= 50.0 ? "PASS" : "FAIL");
  std::printf("  disarmed fault overhead bound (< 2%%): %s\n",
              FaultHookCheap ? "PASS" : "FAIL");
  std::printf("  suite of %d (warm): eval-per-dial %8.2f ms (%7.0f q/s)  "
              "eval-per-call %8.2f ms (%7.0f q/s)\n",
              SuiteN, SeqMs, SeqQps, SeqKeepMs, SeqKeepQps);
  std::printf("  suite of %d (warm): one batch     %8.2f ms (%7.0f q/s)  "
              "%.1fx vs eval-per-dial\n",
              SuiteN, BatchMs, BatchQps, BatchSpeedup);
  std::printf("  batch byte-identical to sequential: %s\n",
              BatchIdentical ? "yes" : "NO");
  std::printf("  batch suite speedup bound (>= 5x): %s\n",
              BatchFast ? "PASS" : "FAIL");

  benchjson::Emitter E("serve");
  E.metric("cold_ms", ColdMs);
  E.metric("warm_ms", WarmMs);
  E.metric("disk_warm_ms", DiskMs);
  E.metric("warm_speedup", Speedup);
  E.metric("sustained_qps", Qps);
  E.metric("disarmed_fault_ns_per_check", DisarmedNs);
  E.metric("disarmed_fault_overhead_pct", DisarmedOverheadPct);
  E.metric("warm_byte_identical", WarmIdentical);
  E.metric("disk_byte_identical", DiskIdentical);
  E.metric("concurrent_byte_identical", QpsOk.load());
  E.metric("batch_suite_n", double(SuiteN));
  E.metric("batch_seq_ms", SeqMs);
  E.metric("batch_seq_keepalive_ms", SeqKeepMs);
  E.metric("batch_ms", BatchMs);
  E.metric("batch_seq_qps", SeqQps);
  E.metric("batch_seq_keepalive_qps", SeqKeepQps);
  E.metric("batch_qps", BatchQps);
  E.metric("batch_speedup", BatchSpeedup);
  E.metric("batch_byte_identical", BatchIdentical);
  E.metric("pass", Pass);
  E.write("BENCH_serve.json");

  return Pass ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return serveSummary();
}
