//===-- bench/table_cheri.cpp - the §4 CHERI C findings -------------------===//
///
/// \file
/// T6 — runs the de facto suite under the CHERI capability model and lists
/// every test whose behaviour deviates from the candidate de facto model,
/// reproducing the §4 findings:
///  - byte-granularity pointer copies strip the capability tag;
///  - pointer equality compares metadata (the exact-equals instruction the
///    CHERI developers added in response to the paper);
///  - the (i & 3u) offset-AND quirk makes defensive alignment assertions
///    fail even though the underlying idiom works.
///
//===----------------------------------------------------------------------===//

#include "defacto/Suite.h"

#include <cstdio>

int main() {
  using namespace cerb;
  using namespace cerb::defacto;

  std::printf("T6: CHERI C vs the candidate de facto model (§4)\n");
  std::printf("================================================\n");

  unsigned Same = 0, Deviations = 0;
  for (const TestCase &T : testSuite()) {
    TestResult D = runTest(T, mem::MemoryPolicy::defacto());
    TestResult C = runTest(T, mem::MemoryPolicy::cheri());
    auto Summ = [](const TestResult &R) {
      std::string S;
      for (const exec::Outcome &O : R.Outcomes.Distinct)
        S += (S.empty() ? "" : " | ") + O.str();
      return S;
    };
    std::string SD = Summ(D), SC = Summ(C);
    if (SD == SC) {
      ++Same;
      continue;
    }
    ++Deviations;
    std::printf("DEVIATES %-32s [%s]\n", T.Name.c_str(),
                T.QuestionId.c_str());
    std::printf("    defacto: %s\n", SD.c_str());
    std::printf("    cheri:   %s\n", SC.c_str());
  }
  std::printf("\n%u tests agree, %u deviate under the CHERI model.\n", Same,
              Deviations);

  std::printf("\n§4 findings checklist:\n");
  auto Check = [&](const char *Test, const char *Paper) {
    const TestCase *T = findTest(Test);
    TestResult C = runTest(*T, mem::MemoryPolicy::cheri());
    std::printf("  %-28s expected per §4: %-28s -> %s\n", Test, Paper,
                C.Pass ? "REPRODUCED" : "NOT reproduced");
  };
  Check("cheri_offset_and", "assertion fails (offset AND)");
  Check("ptr_copy_bytewise", "capability tag stripped");
  Check("ptr_eq_one_past_adjacent", "exact-equals answers 0");
  Check("cheri_untagged_int_to_ptr", "tag violation trap");
  return 0;
}
