//===-- bench/table_provenance_example.cpp - the §2.1 headline result -----===//
///
/// \file
/// T4 — runs provenance_basic_global_yx.c (adapted from DR260) under every
/// memory object model instantiation and prints the observed behaviours
/// next to the paper's reported compiler behaviours:
///   concrete expectation:  x=1 y=11 *p=11 *q=11
///   GCC:                   x=1 y=2  *p=11 *q=2   (provenance-based alias
///                          reasoning -> the access is treated as UB)
///   ICC:                   x=1 y=2  *p=11 *q=11
///
//===----------------------------------------------------------------------===//

#include "defacto/Suite.h"

#include <cstdio>

int main() {
  using namespace cerb;
  using namespace cerb::defacto;

  std::printf("T4: provenance_basic_global_yx.c across the memory object "
              "models (§2.1)\n");
  std::printf("========================================================================\n");
  const TestCase *T = findTest("provenance_basic_global_yx");
  if (!T) {
    std::printf("test missing!\n");
    return 1;
  }
  std::printf("%s\n", T->Source.c_str());

  for (auto P : {mem::MemoryPolicy::concrete(), mem::MemoryPolicy::defacto(),
                 mem::MemoryPolicy::strictIso(), mem::MemoryPolicy::cheri()}) {
    TestResult R = runTest(*T, P);
    std::printf("--- model %-10s (%llu paths explored)\n", P.Name.c_str(),
                static_cast<unsigned long long>(R.Outcomes.PathsExplored));
    for (const exec::Outcome &O : R.Outcomes.Distinct)
      std::printf("    %s\n", O.str().c_str());
  }

  std::printf("\npaper-reported behaviours of real implementations:\n");
  std::printf("    concrete semantics expectation: x=1 y=11 *p=11 *q=11\n");
  std::printf("    GCC: x=1 y=2 *p=11 *q=2   (exploits DR260 provenance; "
              "the de facto\n");
  std::printf("         model makes the justifying UB explicit — our "
              "'defacto' row)\n");
  std::printf("    ICC: x=1 y=2 *p=11 *q=11\n");
  std::printf("\nshape check: 'concrete' must print the concrete "
              "expectation, and the\nprovenance-tracking models must "
              "report Access_out_of_bounds at *p=11.\n");
  return 0;
}
