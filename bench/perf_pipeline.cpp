//===-- bench/perf_pipeline.cpp - pipeline stage throughput (P2) ----------===//
///
/// \file
/// google-benchmark timings for each pipeline stage (parse, desugar,
/// typecheck, elaborate, execute) over generated programs of growing size.
/// Supports the §6 observation that Cerberus is a test oracle for small
/// programs, not a production interpreter.
///
//===----------------------------------------------------------------------===//

#include "ail/Desugar.h"
#include "cabs/Parser.h"
#include "csmith/Generator.h"
#include "elab/Elaborate.h"
#include "exec/Pipeline.h"
#include "typing/TypeCheck.h"

#include <benchmark/benchmark.h>

using namespace cerb;

namespace {

std::string programOfSize(unsigned Size) {
  csmith::GenOptions O;
  O.Seed = 7;
  O.Size = Size;
  return csmith::generateProgram(O);
}

} // namespace

static void BM_Parse(benchmark::State &State) {
  std::string Src = programOfSize(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    auto R = cabs::parseTranslationUnit(Src);
    benchmark::DoNotOptimize(R);
  }
  State.SetBytesProcessed(State.iterations() * Src.size());
}
BENCHMARK(BM_Parse)->Arg(12)->Arg(48)->Unit(benchmark::kMicrosecond);

static void BM_FrontEndToTypedAil(benchmark::State &State) {
  std::string Src = programOfSize(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    auto U = cabs::parseTranslationUnit(Src);
    auto A = ail::desugar(*U);
    auto T = typing::typeCheck(*A);
    benchmark::DoNotOptimize(T);
  }
}
BENCHMARK(BM_FrontEndToTypedAil)->Arg(12)->Arg(48)
    ->Unit(benchmark::kMicrosecond);

static void BM_Elaborate(benchmark::State &State) {
  std::string Src = programOfSize(static_cast<unsigned>(State.range(0)));
  for (auto _ : State) {
    auto R = exec::compile(Src);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_Elaborate)->Arg(12)->Arg(48)->Unit(benchmark::kMicrosecond);

static void BM_Execute(benchmark::State &State) {
  std::string Src = programOfSize(static_cast<unsigned>(State.range(0)));
  auto Prog = exec::compile(Src);
  exec::RunOptions Opts;
  for (auto _ : State) {
    exec::Outcome O = exec::runOnce(*Prog, Opts);
    benchmark::DoNotOptimize(O);
  }
}
BENCHMARK(BM_Execute)->Arg(12)->Arg(48)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
