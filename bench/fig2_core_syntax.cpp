//===-- bench/fig2_core_syntax.cpp - regenerate paper Fig. 2 --------------===//
///
/// \file
/// Prints the Core grammar (the shape of paper Fig. 2) and demonstrates it
/// is the *actual* grammar of the implementation by pretty-printing an
/// elaborated program that exercises every major construct.
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "exec/Pipeline.h"

#include <cstdio>

int main() {
  std::printf("%s\n", cerb::core::coreGrammarSummary().c_str());

  std::printf("\nWitness: an elaborated C program exercising the grammar\n");
  std::printf("========================================================\n");
  auto P = cerb::exec::compile(R"(
int g;
int f(int v) { g = v; return v; }
int main(void) {
  int i;
  for (i = 0; i < 2; i++)
    g += f(i) + 1;
  switch (g) {
  case 3: return 1;
  default: return 0;
  }
}
)");
  if (!P) {
    std::printf("compile error: %s\n", P.error().str().c_str());
    return 1;
  }
  std::string S = cerb::core::printProgram(*P);
  std::printf("%s\n", S.c_str());
  return 0;
}
