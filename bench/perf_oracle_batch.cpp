//===-- bench/perf_oracle_batch.cpp - oracle batch throughput (P4) --------===//
///
/// \file
/// Batch-oracle throughput over the de facto semantic suite × all four
/// memory-model policies at 1/2/4/8 worker threads. The workload is the
/// paper's §6 sweep as one batch (jobs = tests × policies); items/sec is
/// jobs per second. After the benchmark series, a summary reports the
/// speedup of each thread count over --jobs 1 and verifies that the
/// serialized no-timings reports are byte-identical across thread counts
/// (the oracle's determinism contract).
///
/// A second series scales the *parallel exhaustive explorer* (subtree
/// work-sharing, exec/Driver.h) at 1/2/4/8 workers over one multi-path
/// concurrency program (seven indeterminately sequenced call pairs — 128
/// allowed executions, each doing real arithmetic work), again checking
/// that the no-timings oracle reports are byte-identical per thread count.
///
/// A third series scales the *differential fuzzing campaign* (src/fuzz)
/// over a fixed seed range at 1/2/4/8 workers: programs/sec vs --jobs,
/// plus the campaign's own determinism contract (default reports
/// byte-identical across worker counts). Skipped when no host C compiler
/// is available.
///
//===----------------------------------------------------------------------===//

#include "bench_json.h"
#include "exec/Pipeline.h"
#include "fuzz/Campaign.h"
#include "oracle/Oracle.h"
#include "oracle/Report.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <thread>

using namespace cerb;
using namespace cerb::oracle;

namespace {

const std::vector<Job> &suiteBatch() {
  static const std::vector<Job> Jobs = Oracle::suiteJobs(
      defacto::testSuite(), mem::MemoryPolicy::allPresets(), JobBudget());
  return Jobs;
}

void BM_OracleSuiteBatch(benchmark::State &State) {
  OracleConfig Cfg;
  Cfg.Threads = static_cast<unsigned>(State.range(0));
  Oracle Orc(Cfg);
  const std::vector<Job> &Jobs = suiteBatch();
  uint64_t CacheMisses = 0;
  for (auto _ : State) {
    BatchResult B = Orc.run(Jobs);
    CacheMisses = B.Stats.CacheMisses;
    if (B.Stats.ChecksFailed) {
      State.SkipWithError("suite expectations failed under the oracle");
      return;
    }
    benchmark::DoNotOptimize(B);
  }
  State.SetItemsProcessed(State.iterations() * suiteBatch().size());
  State.counters["threads"] = static_cast<double>(Cfg.Threads);
  State.counters["distinct_sources"] = static_cast<double>(CacheMisses);
}

BENCHMARK(BM_OracleSuiteBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Direct wall-clock measurement (outside the benchmark harness) for the
/// speedup table and the determinism check.
double measureOnce(unsigned Threads, std::string *ReportOut) {
  OracleConfig Cfg;
  Cfg.Threads = Threads;
  auto T0 = std::chrono::steady_clock::now();
  BatchResult B = Oracle(Cfg).run(suiteBatch());
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  if (ReportOut) {
    ReportOptions RO;
    RO.IncludeTimings = false;
    *ReportOut = toJson(B, RO);
  }
  return Ms;
}

//===----------------------------------------------------------------------===//
// Exhaustive-mode scaling: one program, many allowed executions
//===----------------------------------------------------------------------===//

/// Seven indeterminately sequenced pairs of calls -> 2^7 = 128 paths;
/// every call burns enough (well-defined, unsigned) arithmetic that one
/// path — one subtree task, a few ms of interpretation — is far coarser
/// than the frontier's queue operations.
const char *multiPathSource() {
  return R"(
#include <stdio.h>
unsigned g;
int work(int v) {
  unsigned i, s = 0;
  for (i = 0; i < 30u; i++)
    s += (i ^ (unsigned)v) + (s >> 3);
  g = g * 10u + (unsigned)v + (s & 0u);
  return 0;
}
int main(void) {
  work(1) + work(2);
  work(3) + work(4);
  work(5) + work(6);
  work(7) + work(8);
  work(1) + work(3);
  work(2) + work(5);
  work(4) + work(7);
  printf("%u\n", g);
  return 0;
}
)";
}

Job multiPathJob(unsigned ExploreJobs) {
  Job J;
  J.Name = "multi_path_concurrency";
  J.Source = multiPathSource();
  J.Policy = mem::MemoryPolicy::defacto();
  J.ExecMode = Mode::Exhaustive;
  J.Budget.MaxPaths = 4096;
  J.Budget.ExploreJobs = ExploreJobs;
  return J;
}

void BM_ExhaustiveExplore(benchmark::State &State) {
  unsigned Threads = static_cast<unsigned>(State.range(0));
  auto ProgOr = exec::compile(multiPathSource());
  if (!ProgOr) {
    State.SkipWithError("multi-path program failed to compile");
    return;
  }
  exec::RunOptions Opts;
  Opts.MaxPaths = 4096;
  Opts.ExploreJobs = Threads;
  uint64_t Paths = 0;
  for (auto _ : State) {
    exec::ExhaustiveResult R = exec::runExhaustive(*ProgOr, Opts);
    Paths = R.PathsExplored;
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * Paths);
  State.counters["threads"] = static_cast<double>(Threads);
  State.counters["paths"] = static_cast<double>(Paths);
}

BENCHMARK(BM_ExhaustiveExplore)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Wall-clock of the multi-path job through the oracle (threads = explore
/// workers), capturing the no-timings JSON report for the identity check.
double measureExploreOnce(unsigned Threads, std::string *ReportOut) {
  OracleConfig Cfg;
  Cfg.Threads = Threads;
  std::vector<Job> Jobs{multiPathJob(Threads)};
  auto T0 = std::chrono::steady_clock::now();
  BatchResult B = Oracle(Cfg).run(Jobs);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  if (ReportOut) {
    ReportOptions RO;
    RO.IncludeTimings = false;
    *ReportOut = toJson(B, RO);
  }
  return Ms;
}

void exhaustiveScalingSummary(benchjson::Emitter &E) {
  std::printf("\nP4b summary: parallel exhaustive exploration "
              "(subtree work-sharing, 128-path concurrency program)\n");
  std::string Baseline;
  double Base = measureExploreOnce(1, &Baseline);
  std::printf("  explore-jobs=1: %8.1f ms  (baseline)\n", Base);
  bool AllIdentical = true;
  double SpeedupAt8 = 1.0;
  for (unsigned T : {2u, 4u, 8u}) {
    std::string Rep;
    double Ms = measureExploreOnce(T, &Rep);
    bool Same = Rep == Baseline;
    AllIdentical = AllIdentical && Same;
    if (T == 8)
      SpeedupAt8 = Base / Ms;
    std::printf("  explore-jobs=%u: %8.1f ms  speedup %.2fx  "
                "report-identical: %s\n",
                T, Ms, Base / Ms, Same ? "yes" : "NO");
  }
  std::printf("  determinism: no-timings JSON byte-identical across "
              "explore-jobs: %s\n",
              AllIdentical ? "yes" : "NO");
  std::printf("  speedup at 8 workers: %.2fx (target >= 2.5x on >= 8 "
              "hardware threads; %u available here)\n",
              SpeedupAt8, std::thread::hardware_concurrency());
  E.metric("explore_base_ms", Base);
  E.metric("explore_speedup_at_8", SpeedupAt8);
  E.metric("explore_reports_identical", AllIdentical);
}

void speedupSummary(benchjson::Emitter &E) {
  std::printf("\nP4 summary: oracle batch over the de facto suite "
              "(%zu jobs)\n",
              suiteBatch().size());
  std::string Baseline;
  double Base = measureOnce(1, &Baseline);
  std::printf("  threads=1: %8.1f ms  (baseline)\n", Base);
  bool AllIdentical = true;
  double SpeedupAt8 = 1.0;
  for (unsigned T : {2u, 4u, 8u}) {
    std::string Rep;
    double Ms = measureOnce(T, &Rep);
    bool Same = Rep == Baseline;
    AllIdentical = AllIdentical && Same;
    if (T == 8)
      SpeedupAt8 = Base / Ms;
    std::printf("  threads=%u: %8.1f ms  speedup %.2fx  report-identical: "
                "%s\n",
                T, Ms, Base / Ms, Same ? "yes" : "NO");
  }
  std::printf("  determinism: no-timings JSON byte-identical across thread "
              "counts: %s\n",
              AllIdentical ? "yes" : "NO");
  E.metric("suite_jobs", static_cast<uint64_t>(suiteBatch().size()));
  E.metric("suite_base_ms", Base);
  E.metric("suite_speedup_at_8", SpeedupAt8);
  E.metric("suite_reports_identical", AllIdentical);
}

//===----------------------------------------------------------------------===//
// Campaign throughput: the §6 experiment at scale (programs/sec vs --jobs)
//===----------------------------------------------------------------------===//

/// One fixed-seed-range campaign (reduction on, as in production use);
/// returns wall ms and captures the default (no-timings) report.
double measureCampaignOnce(unsigned Jobs, std::string *ReportOut,
                           uint64_t *Programs) {
  fuzz::CampaignOptions C;
  C.FirstSeed = 1;
  C.LastSeed = 32;
  C.Gen.Size = 6;
  C.Jobs = Jobs;
  C.TestDeadlineMs = 10'000;
  auto T0 = std::chrono::steady_clock::now();
  fuzz::CampaignResult R = fuzz::runCampaign(C);
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  if (ReportOut)
    *ReportOut = fuzz::toJson(R, C);
  if (Programs)
    *Programs = C.LastSeed - C.FirstSeed + 1;
  return Ms;
}

void campaignThroughputSummary(benchjson::Emitter &E) {
  std::printf("\nP4c summary: differential fuzzing campaign throughput "
              "(seeds 1..32, reduction on)\n");
  if (!csmith::oracleAvailable()) {
    std::printf("  skipped: no host C compiler available\n");
    E.metric("campaign_skipped", true);
    return;
  }
  std::string Baseline;
  uint64_t Programs = 0;
  double Base = measureCampaignOnce(1, &Baseline, &Programs);
  std::printf("  jobs=1: %8.1f ms  %6.1f programs/sec  (baseline)\n", Base,
              Programs / (Base / 1000.0));
  bool AllIdentical = true;
  double SpeedupAt8 = 1.0;
  for (unsigned J : {2u, 4u, 8u}) {
    std::string Rep;
    double Ms = measureCampaignOnce(J, &Rep, nullptr);
    bool Same = Rep == Baseline;
    AllIdentical = AllIdentical && Same;
    if (J == 8)
      SpeedupAt8 = Base / Ms;
    std::printf("  jobs=%u: %8.1f ms  %6.1f programs/sec  speedup %.2fx  "
                "report-identical: %s\n",
                J, Ms, Programs / (Ms / 1000.0), Base / Ms,
                Same ? "yes" : "NO");
  }
  std::printf("  determinism: default fuzz report byte-identical across "
              "--jobs: %s\n",
              AllIdentical ? "yes" : "NO");
  E.metric("campaign_base_ms", Base);
  E.metric("campaign_programs_per_sec", Programs / (Base / 1000.0));
  E.metric("campaign_speedup_at_8", SpeedupAt8);
  E.metric("campaign_reports_identical", AllIdentical);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  benchjson::Emitter E("oracle_batch");
  speedupSummary(E);
  exhaustiveScalingSummary(E);
  campaignThroughputSummary(E);
  E.write("BENCH_oracle.json");
  return 0;
}
