//===-- bench/perf_oracle_batch.cpp - oracle batch throughput (P4) --------===//
///
/// \file
/// Batch-oracle throughput over the de facto semantic suite × all four
/// memory-model policies at 1/2/4/8 worker threads. The workload is the
/// paper's §6 sweep as one batch (jobs = tests × policies); items/sec is
/// jobs per second. After the benchmark series, a summary reports the
/// speedup of each thread count over --jobs 1 and verifies that the
/// serialized no-timings reports are byte-identical across thread counts
/// (the oracle's determinism contract).
///
//===----------------------------------------------------------------------===//

#include "oracle/Oracle.h"
#include "oracle/Report.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace cerb;
using namespace cerb::oracle;

namespace {

const std::vector<Job> &suiteBatch() {
  static const std::vector<Job> Jobs = Oracle::suiteJobs(
      defacto::testSuite(), mem::MemoryPolicy::allPresets(), JobBudget());
  return Jobs;
}

void BM_OracleSuiteBatch(benchmark::State &State) {
  OracleConfig Cfg;
  Cfg.Threads = static_cast<unsigned>(State.range(0));
  Oracle Orc(Cfg);
  const std::vector<Job> &Jobs = suiteBatch();
  uint64_t CacheMisses = 0;
  for (auto _ : State) {
    BatchResult B = Orc.run(Jobs);
    CacheMisses = B.Stats.CacheMisses;
    if (B.Stats.ChecksFailed) {
      State.SkipWithError("suite expectations failed under the oracle");
      return;
    }
    benchmark::DoNotOptimize(B);
  }
  State.SetItemsProcessed(State.iterations() * suiteBatch().size());
  State.counters["threads"] = static_cast<double>(Cfg.Threads);
  State.counters["distinct_sources"] = static_cast<double>(CacheMisses);
}

BENCHMARK(BM_OracleSuiteBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Direct wall-clock measurement (outside the benchmark harness) for the
/// speedup table and the determinism check.
double measureOnce(unsigned Threads, std::string *ReportOut) {
  OracleConfig Cfg;
  Cfg.Threads = Threads;
  auto T0 = std::chrono::steady_clock::now();
  BatchResult B = Oracle(Cfg).run(suiteBatch());
  double Ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  if (ReportOut) {
    ReportOptions RO;
    RO.IncludeTimings = false;
    *ReportOut = toJson(B, RO);
  }
  return Ms;
}

void speedupSummary() {
  std::printf("\nP4 summary: oracle batch over the de facto suite "
              "(%zu jobs)\n",
              suiteBatch().size());
  std::string Baseline;
  double Base = measureOnce(1, &Baseline);
  std::printf("  threads=1: %8.1f ms  (baseline)\n", Base);
  bool AllIdentical = true;
  for (unsigned T : {2u, 4u, 8u}) {
    std::string Rep;
    double Ms = measureOnce(T, &Rep);
    bool Same = Rep == Baseline;
    AllIdentical = AllIdentical && Same;
    std::printf("  threads=%u: %8.1f ms  speedup %.2fx  report-identical: "
                "%s\n",
                T, Ms, Base / Ms, Same ? "yes" : "NO");
  }
  std::printf("  determinism: no-timings JSON byte-identical across thread "
              "counts: %s\n",
              AllIdentical ? "yes" : "NO");
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  speedupSummary();
  return 0;
}
