//===-- bench/ablation_policy_knobs.cpp - model design ablation -----------===//
///
/// \file
/// A — ablation of the memory-model design choices DESIGN.md calls out.
/// Starting from the candidate de facto model, each knob is flipped alone
/// and the de facto suite re-run; the delta shows exactly which tests each
/// §2 design decision decides. This regenerates, in executable form, the
/// paper's per-question discussion ("one could argue ... one could turn
/// off ... none of these are wholly satisfactory").
///
//===----------------------------------------------------------------------===//

#include "defacto/Suite.h"
#include "support/Format.h"

#include <cstdio>
#include <functional>
#include <map>
#include <vector>

int main() {
  using namespace cerb;
  using namespace cerb::defacto;

  std::printf("A: single-knob ablation of the candidate de facto model\n");
  std::printf("=======================================================\n\n");

  struct Knob {
    const char *Name;
    const char *Question;
    std::function<void(mem::MemoryPolicy &)> Flip;
  };
  const std::vector<Knob> Knobs = {
      {"TrackProvenance=off (pure concrete addressing)", "DR260",
       [](mem::MemoryPolicy &P) { P.TrackProvenance = false; }},
      {"PermitOOBConstruction=off (UB at the arithmetic)", "Q31",
       [](mem::MemoryPolicy &P) { P.PermitOOBConstruction = false; }},
      {"RelationalAcrossObjectsUB=on (ISO 6.5.8p5)", "Q25",
       [](mem::MemoryPolicy &P) { P.RelationalAcrossObjectsUB = true; }},
      {"EqMayConsultProvenance=off (pure address equality)", "Q2",
       [](mem::MemoryPolicy &P) { P.EqMayConsultProvenance = false; }},
      {"PtrDiffAcrossObjectsUB=off (permit inter-object diffs)", "Q9",
       [](mem::MemoryPolicy &P) { P.PtrDiffAcrossObjectsUB = false; }},
      {"StrictEffectiveTypes=on (TBAA)", "Q75",
       [](mem::MemoryPolicy &P) { P.StrictEffectiveTypes = true; }},
      {"UninitReadIsUB=on (§2.4 option 1)", "Q48",
       [](mem::MemoryPolicy &P) { P.UninitReadIsUB = true; }},
      {"ReverseGlobalLayout=off (declaration-order layout)", "layout",
       [](mem::MemoryPolicy &P) { P.ReverseGlobalLayout = false; }},
  };

  // Baseline verdicts.
  std::map<std::string, std::string> Baseline;
  for (const TestResult &R : runSuite(mem::MemoryPolicy::defacto())) {
    std::string V;
    for (const exec::Outcome &O : R.Outcomes.Distinct)
      V += (V.empty() ? "" : " | ") + O.str();
    Baseline[R.Test->Name] = V;
  }

  for (const Knob &K : Knobs) {
    mem::MemoryPolicy P = mem::MemoryPolicy::defacto();
    P.Name = "defacto"; // keep suite expectations keyed consistently
    K.Flip(P);
    unsigned Changed = 0;
    std::string Details;
    for (const TestResult &R : runSuite(P)) {
      std::string V;
      for (const exec::Outcome &O : R.Outcomes.Distinct)
        V += (V.empty() ? "" : " | ") + O.str();
      if (V != Baseline[R.Test->Name]) {
        ++Changed;
        if (Changed <= 6)
          Details += fmt("      {0}\n        now: {1}\n", R.Test->Name, V);
      }
    }
    std::printf("%-52s [%s]\n    changes %u test verdict(s)\n%s",
                K.Name, K.Question, Changed, Details.c_str());
    if (Changed > 6)
      std::printf("      ... and %u more\n", Changed - 6);
    std::printf("\n");
  }

  std::printf("Reading: each knob's delta is exactly the set of idioms the "
              "corresponding\n§2 design question governs — flipping any of "
              "them moves real code between\n'works' and 'UB', which is "
              "the paper's core point.\n");
  return 0;
}
