//===-- bench/fig3_elaboration_shift.cpp - regenerate paper Fig. 3 --------===//
///
/// \file
/// Fig. 3 shows the elaboration of C left-shift (e1 << e2) next to ISO C11
/// 6.5.7. This bench elaborates a left-shift expression and prints the
/// resulting Core, annotated with the clause each undef() realises; it then
/// demonstrates the clauses dynamically (each UB is actually detected).
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "exec/Pipeline.h"

#include <cstdio>

using namespace cerb;

int main() {
  std::printf("Figure 3: the elaboration of e1 << e2 (ISO C11 6.5.7)\n");
  std::printf("=====================================================\n\n");
  std::printf("ISO 6.5.7p3: promotions on each operand separately; UB if "
              "the shift\n  count is negative or >= the width "
              "(Negative_shift / Shift_too_large).\n");
  std::printf("ISO 6.5.7p4: unsigned E1: E1 x 2^E2 reduced modulo max+1; "
              "signed E1 < 0\n  or unrepresentable result: UB "
              "(Exceptional_condition).\n");
  std::printf("Fig. 3 de facto choice (Q43/Q52): unspecified operands are "
              "daemonic; an\n  unsigned result stays Unspecified, a signed "
              "one is undef.\n\n");

  auto P = exec::compile(R"(
int shl(int e1, int e2) { return e1 << e2; }
unsigned int shlu(unsigned int e1, int e2) { return e1 << e2; }
int main(void) { return shl(1, 2) + (int)shlu(1u, 2); }
)");
  if (!P) {
    std::printf("compile error: %s\n", P.error().str().c_str());
    return 1;
  }

  for (const auto &[Id, Proc] : P->Procs) {
    std::string Name = P->Syms.nameOf(Proc.Name);
    if (Name != "shl" && Name != "shlu")
      continue;
    std::printf("---- [[%s: e1 << e2]] elaborates to ----\n", Name.c_str());
    std::printf("%s\n\n", core::printExpr(*Proc.Body, P->Syms, 0).c_str());
  }

  std::printf("---- dynamic witnesses of each 6.5.7 undef ----\n");
  struct Witness {
    const char *Src;
    const char *Clause;
  };
  const Witness Ws[] = {
      {"int main(void){ int s = -1; return 1 << s; }",
       "6.5.7p3 negative shift"},
      {"int main(void){ int s = 32; return 1 << s; }",
       "6.5.7p3 count >= width"},
      {"int main(void){ int x = -1; return x << 1; }",
       "6.5.7p4 negative E1"},
      {"int main(void){ int x = 1; return x << 30 << 2; }",
       "6.5.7p4 unrepresentable"},
      {"int main(void){ unsigned x = 3u; return (x << 31) != 0u ? 0 : 1; }",
       "6.5.7p4 unsigned reduces modulo 2^N (defined)"},
  };
  for (const Witness &W : Ws) {
    auto R = exec::evaluateOnce(W.Src);
    std::printf("  %-46s -> %s\n", W.Clause,
                R ? R->str().c_str() : R.error().str().c_str());
  }
  return 0;
}
