//===-- bench/perf_trace_overhead.cpp - tracing overhead bound (P5) -------===//
///
/// \file
/// Proves the src/trace disabled-path overhead bound: with no --trace flag,
/// the instrumentation threaded through the pipeline, evaluator, explorer,
/// and memory model must cost < 2% of exhaustive-exploration wall clock.
///
/// One binary cannot compare against an uninstrumented build of itself, so
/// the bound is established from first principles:
///
///   1. microbench the two disabled-path primitives — a Span construct/
///      destruct (one relaxed atomic load and a branch) and a striped
///      Counter::add (one relaxed fetch_add) — to get cost per crossing;
///   2. run the 128-path exhaustive-exploration workload with tracing
///      disabled and count how many instrumentation sites one run actually
///      crosses (counter adds from the Registry delta; event sites from an
///      enabled run's trace document);
///   3. estimated overhead = crossings x primitive cost / disabled wall.
///
/// The summary also reports the *enabled* overhead (tracing on vs off) for
/// context — that path buffers real events and is allowed to cost more.
/// Emits BENCH_trace.json (bench_json.h) for the CI bench trajectory.
///
//===----------------------------------------------------------------------===//

#include "bench_json.h"
#include "exec/Driver.h"
#include "exec/Pipeline.h"
#include "trace/Trace.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace cerb;

namespace {

/// Seven indeterminately sequenced call pairs -> 2^7 = 128 allowed
/// executions of real interpreted work (same shape as perf_oracle_batch's
/// P4b workload).
const char *multiPathSource() {
  return R"(
#include <stdio.h>
unsigned g;
int work(int v) {
  unsigned i, s = 0;
  for (i = 0; i < 30u; i++)
    s += (i ^ (unsigned)v) + (s >> 3);
  g = g * 10u + (unsigned)v + (s & 0u);
  return 0;
}
int main(void) {
  work(1) + work(2);
  work(3) + work(4);
  work(5) + work(6);
  work(7) + work(8);
  work(1) + work(3);
  work(2) + work(5);
  work(4) + work(7);
  printf("%u\n", g);
  return 0;
}
)";
}

void BM_SpanDisabled(benchmark::State &State) {
  for (auto _ : State) {
    trace::Span S("bench.span", "bench");
    benchmark::DoNotOptimize(S.active());
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_CounterAdd(benchmark::State &State) {
  static trace::Counter C("bench.counter");
  for (auto _ : State)
    C.add();
  benchmark::DoNotOptimize(C.value());
}
BENCHMARK(BM_CounterAdd);

void BM_InstantDisabled(benchmark::State &State) {
  for (auto _ : State)
    trace::instant("bench.instant", "bench");
}
BENCHMARK(BM_InstantDisabled);

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Nanoseconds per call of \p F, measured over enough iterations to swamp
/// the clock reads.
template <typename Fn> double nsPerCall(Fn &&F) {
  // Warm up (first stripe assignment, cache fills).
  for (int I = 0; I < 1000; ++I)
    F();
  constexpr uint64_t N = 4'000'000;
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I < N; ++I)
    F();
  return msSince(T0) * 1e6 / static_cast<double>(N);
}

uint64_t sumDelta(const trace::Registry::Snapshot &Before,
                  const trace::Registry::Snapshot &After) {
  uint64_t Sum = 0;
  for (const auto &[Name, N] : trace::Registry::delta(Before, After))
    Sum += N;
  return Sum;
}

/// Events one traced run records: count "ph" occurrences in the trace
/// document, minus per-thread metadata records.
uint64_t countEvents(const std::string &TraceJson) {
  uint64_t Events = 0, Meta = 0;
  for (size_t Pos = 0;
       (Pos = TraceJson.find("\"ph\": \"", Pos)) != std::string::npos;
       Pos += 7) {
    if (TraceJson.compare(Pos + 7, 1, "M") == 0)
      ++Meta;
    ++Events;
  }
  return Events - Meta;
}

int overheadSummary() {
  std::printf("\nP5 summary: tracing overhead on the 128-path exhaustive "
              "exploration\n");

  auto ProgOr = exec::compile(multiPathSource());
  if (!ProgOr) {
    std::fprintf(stderr, "multi-path program failed to compile\n");
    return 1;
  }
  exec::RunOptions Opts;
  Opts.MaxPaths = 4096;
  Opts.ExploreJobs = 1; // serial: the per-site cost is not hidden by idle cores

  // 1. Disabled-path primitive costs.
  double SpanNs = nsPerCall([] {
    trace::Span S("bench.span", "bench");
    benchmark::DoNotOptimize(S.active());
  });
  static trace::Counter BenchCnt("bench.summary_counter");
  double CounterNs = nsPerCall([] { BenchCnt.add(); });
  std::printf("  disabled Span:  %6.2f ns/crossing\n", SpanNs);
  std::printf("  Counter::add:   %6.2f ns/crossing\n", CounterNs);

  // 2. Site crossings per exploration.
  trace::Registry::Snapshot Before = trace::Registry::instance().snapshot();
  exec::ExhaustiveResult Probe = exec::runExhaustive(*ProgOr, Opts);
  uint64_t CounterAdds =
      sumDelta(Before, trace::Registry::instance().snapshot());

  trace::start();
  exec::ExhaustiveResult Traced = exec::runExhaustive(*ProgOr, Opts);
  trace::stop();
  uint64_t EventSites = countEvents(trace::chromeTraceJson());
  benchmark::DoNotOptimize(Traced);
  std::printf("  per exploration (%llu paths): %llu counter adds, "
              "%llu event sites\n",
              static_cast<unsigned long long>(Probe.PathsExplored),
              static_cast<unsigned long long>(CounterAdds),
              static_cast<unsigned long long>(EventSites));

  // 3. Wall clock, tracing disabled (median-ish: best of 3 to damp noise)
  //    and enabled.
  double DisabledMs = 1e100;
  for (int I = 0; I < 3; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    exec::ExhaustiveResult R = exec::runExhaustive(*ProgOr, Opts);
    benchmark::DoNotOptimize(R);
    DisabledMs = std::min(DisabledMs, msSince(T0));
  }
  double EnabledMs = 1e100;
  for (int I = 0; I < 3; ++I) {
    trace::start();
    auto T0 = std::chrono::steady_clock::now();
    exec::ExhaustiveResult R = exec::runExhaustive(*ProgOr, Opts);
    double Ms = msSince(T0);
    trace::stop();
    benchmark::DoNotOptimize(R);
    EnabledMs = std::min(EnabledMs, Ms);
  }

  double InstrumentedNs = static_cast<double>(CounterAdds) * CounterNs +
                          static_cast<double>(EventSites) * SpanNs;
  double DisabledPct = InstrumentedNs / (DisabledMs * 1e6) * 100.0;
  double EnabledPct = (EnabledMs - DisabledMs) / DisabledMs * 100.0;
  std::printf("  exploration wall: %.1f ms disabled, %.1f ms enabled "
              "(+%.1f%%)\n",
              DisabledMs, EnabledMs, EnabledPct);
  std::printf("  estimated disabled-path overhead: %.4f%% of wall "
              "(bound: < 2%%)  %s\n",
              DisabledPct, DisabledPct < 2.0 ? "PASS" : "FAIL");

  benchjson::Emitter E("trace_overhead");
  E.metric("span_disabled_ns", SpanNs);
  E.metric("counter_add_ns", CounterNs);
  E.metric("paths", Probe.PathsExplored);
  E.metric("counter_adds_per_run", CounterAdds);
  E.metric("event_sites_per_run", EventSites);
  E.metric("explore_disabled_ms", DisabledMs);
  E.metric("explore_enabled_ms", EnabledMs);
  E.metric("disabled_overhead_pct", DisabledPct);
  E.metric("enabled_overhead_pct", EnabledPct);
  E.metric("pass", DisabledPct < 2.0);
  E.write("BENCH_trace.json");

  return DisabledPct < 2.0 ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return overheadSummary();
}
