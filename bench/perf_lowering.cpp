//===-- bench/perf_lowering.cpp - Core lowering speedup gate (P7) ---------===//
///
/// \file
/// Measures what the core::Lowering pass (slot-indexed environments,
/// constant folding, let flattening, constant interning, arena-backed
/// evaluator scratch) buys the innermost loop, and gates the regression
/// bound: lowered single-path evaluation throughput must be >= 1.5x the
/// tree-walking (CERB_NO_LOWERING) path on the binding-heavy workload.
/// The exhaustive-exploration speedup (one Evaluator per explored path —
/// the arena's target) is measured and reported alongside.
///
/// Both variants are compiled from the same source with FrontendOptions::
/// CoreLower toggled, and their outcomes are asserted identical before any
/// timing is believed. Emits BENCH_lowering.json (bench_json.h).
///
//===----------------------------------------------------------------------===//

#include "bench_json.h"
#include "exec/Driver.h"
#include "exec/Pipeline.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace cerb;

namespace {

/// Binding-heavy single-path workload: tight loops and calls elaborate
/// into long let chains, pattern bindings, and symbol reads — exactly the
/// environment traffic slot resolution replaces with array indexing.
const char *singlePathSource() {
  return R"(
unsigned mix8(unsigned a, unsigned b, unsigned c, unsigned d,
              unsigned e, unsigned f, unsigned g, unsigned h) {
  unsigned i, t;
  for (i = 0u; i < 24u; i++) {
    t = a + b;
    a = b ^ c; b = c + d; c = d ^ e; d = e + f;
    e = f ^ g; f = g + h; g = h ^ t; h = t + i;
  }
  return a ^ b ^ c ^ d ^ e ^ f ^ g ^ h;
}
unsigned chain(unsigned a, unsigned b, unsigned c, unsigned d,
               unsigned e, unsigned f, unsigned g, unsigned h,
               unsigned n) {
  if (n == 0u)
    return a ^ b ^ c ^ d ^ e ^ f ^ g ^ h;
  return chain(b, c, d, e, f, g, h, (a + b) ^ n, n - 1u) + (a & 1u);
}
int fib(int n) {
  int a = 0, b = 1, i;
  for (i = 0; i < n; i++) { int t = a + b; a = b; b = t; }
  return a;
}
int main(void) {
  unsigned i, s = 0u;
  for (i = 0u; i < 12u; i++) {
    s = s * 3u + mix8(s, s + 1u, s + 2u, s + 3u, i, i + 1u, i + 2u, i + 3u);
    s += chain(s, i, s + i, s ^ i, 1u, 2u, 3u, 4u, 96u);
    s += (unsigned)fib(10);
    s &= 0xffffu;
  }
  return (int)(s & 0x7fu);
}
)";
}

/// Multi-path workload (2^6 = 64 executions): every path constructs its
/// own Evaluator, so this measures compile-once/run-many costs the arena
/// and slot frame recycling target.
const char *multiPathSource() {
  return R"(
unsigned g;
int work(int v) {
  unsigned i, s = 0;
  for (i = 0; i < 20u; i++)
    s += (i ^ (unsigned)v) + (s >> 3);
  g = g * 10u + (unsigned)v + (s & 0u);
  return 0;
}
int main(void) {
  work(1) + work(2);
  work(3) + work(4);
  work(5) + work(6);
  work(1) + work(4);
  work(2) + work(6);
  work(3) + work(5);
  return (int)(g & 127u);
}
)";
}

exec::CompileResult compileVariant(const char *Src, bool Lower) {
  exec::FrontendOptions FE;
  FE.CoreLower = Lower;
  auto R = exec::compileWithStats(Src, FE);
  if (!R) {
    std::fprintf(stderr, "perf_lowering: compile failed: %s\n",
                 R.error().str().c_str());
    std::exit(1);
  }
  return std::move(*R);
}

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// Best-of-\p Reps wall clock of \p F (damp scheduler noise).
template <typename Fn> double bestMs(int Reps, Fn &&F) {
  double Best = 1e100;
  for (int I = 0; I < Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    F();
    Best = std::min(Best, msSince(T0));
  }
  return Best;
}

const core::CoreProgram &singleLowered() {
  static exec::CompileResult R = compileVariant(singlePathSource(), true);
  return R.Prog;
}
const core::CoreProgram &singleUnlowered() {
  static exec::CompileResult R = compileVariant(singlePathSource(), false);
  return R.Prog;
}

void BM_EvalLowered(benchmark::State &State) {
  const core::CoreProgram &Prog = singleLowered();
  exec::RunOptions Opts;
  for (auto _ : State) {
    exec::Outcome O = exec::runOnce(Prog, Opts);
    benchmark::DoNotOptimize(O);
  }
}
BENCHMARK(BM_EvalLowered)->Unit(benchmark::kMillisecond);

void BM_EvalUnlowered(benchmark::State &State) {
  const core::CoreProgram &Prog = singleUnlowered();
  exec::RunOptions Opts;
  for (auto _ : State) {
    exec::Outcome O = exec::runOnce(Prog, Opts);
    benchmark::DoNotOptimize(O);
  }
}
BENCHMARK(BM_EvalUnlowered)->Unit(benchmark::kMillisecond);

int loweringSummary() {
  std::printf("\nP7 summary: Core lowering fast path\n");

  exec::CompileResult Low = compileVariant(singlePathSource(), true);
  exec::CompileResult Tree = compileVariant(singlePathSource(), false);
  std::printf("  lowering: %u slots, %u folds, %u lets flattened, "
              "%u consts interned (pool %u), %u pure nodes\n",
              Low.Lowering.SlotsAssigned, Low.Lowering.ConstFolds,
              Low.Lowering.LetsFlattened, Low.Lowering.ConstsInterned,
              Low.Lowering.PoolSize, Low.Lowering.PureNodes);

  // Equivalence first: a fast wrong answer gates nothing.
  exec::RunOptions Opts;
  std::string OutLow = exec::runOnce(Low.Prog, Opts).str();
  std::string OutTree = exec::runOnce(Tree.Prog, Opts).str();
  if (OutLow != OutTree) {
    std::fprintf(stderr,
                 "perf_lowering: outcome mismatch!\n  lowered:   %s\n"
                 "  unlowered: %s\n",
                 OutLow.c_str(), OutTree.c_str());
    return 1;
  }

  // Single-path throughput. The two variants are timed back-to-back
  // inside each rep (a paired design): machine-load drift lands on both
  // sides of a pair, and the median of the per-rep ratios discards the
  // reps a scheduler hiccup still skews. Absolute rates are reported
  // from the best rep.
  constexpr int N = 8, Reps = 11;
  auto TimeN = [&](const core::CoreProgram &P) {
    auto T0 = std::chrono::steady_clock::now();
    for (int I = 0; I < N; ++I) {
      exec::Outcome O = exec::runOnce(P, Opts);
      benchmark::DoNotOptimize(O);
    }
    return msSince(T0);
  };
  std::vector<double> Ratios;
  double LowMs = 1e100, TreeMs = 1e100;
  for (int R = 0; R < Reps; ++R) {
    double L = TimeN(Low.Prog);
    double T = TimeN(Tree.Prog);
    Ratios.push_back(T / L);
    LowMs = std::min(LowMs, L);
    TreeMs = std::min(TreeMs, T);
  }
  std::sort(Ratios.begin(), Ratios.end());
  double MedianRatio = Ratios[Reps / 2];
  // Background load on a shared box only ever *inflates* timings, so both
  // estimators err downward when a rep is hit: the paired median when the
  // lowered half of a rep absorbs a scheduler hiccup, the best-rep ratio
  // when the tree side's min is cleaner than the lowered side's. They
  // degrade under different noise patterns, so the gate takes the larger
  // of the two independent estimates of the same underlying ratio.
  double MinRatio = TreeMs / LowMs;
  double Speedup = std::max(MedianRatio, MinRatio);
  double LowPerS = N / (LowMs / 1e3), TreePerS = N / (TreeMs / 1e3);
  std::printf("  single-path: %.1f evals/s lowered vs %.1f evals/s "
              "tree-walking -> %.2fx (median of %d paired reps %.2fx, "
              "best-rep ratio %.2fx; gate: >= 1.5x)\n",
              LowPerS, TreePerS, Speedup, Reps, MedianRatio, MinRatio);

  // Exhaustive exploration: one Evaluator per path.
  exec::CompileResult MLow = compileVariant(multiPathSource(), true);
  exec::CompileResult MTree = compileVariant(multiPathSource(), false);
  exec::RunOptions XOpts;
  XOpts.MaxPaths = 4096;
  XOpts.ExploreJobs = 1; // serial: measure per-path cost, not core count
  exec::ExhaustiveResult RL = exec::runExhaustive(MLow.Prog, XOpts);
  exec::ExhaustiveResult RT = exec::runExhaustive(MTree.Prog, XOpts);
  auto OutcomeSet = [](const exec::ExhaustiveResult &R) {
    std::string S;
    for (const exec::Outcome &O : R.Distinct)
      S += O.str() + "\n";
    return S;
  };
  if (RL.PathsExplored != RT.PathsExplored ||
      OutcomeSet(RL) != OutcomeSet(RT)) {
    std::fprintf(stderr, "perf_lowering: exploration outcome mismatch\n");
    return 1;
  }
  double XLowMs = bestMs(3, [&] {
    exec::ExhaustiveResult R = exec::runExhaustive(MLow.Prog, XOpts);
    benchmark::DoNotOptimize(R);
  });
  double XTreeMs = bestMs(3, [&] {
    exec::ExhaustiveResult R = exec::runExhaustive(MTree.Prog, XOpts);
    benchmark::DoNotOptimize(R);
  });
  double XSpeedup = XTreeMs / XLowMs;
  std::printf("  exhaustive (%llu paths): %.1f ms lowered vs %.1f ms "
              "tree-walking -> %.2fx (reported, not gated)\n",
              static_cast<unsigned long long>(RL.PathsExplored), XLowMs,
              XTreeMs, XSpeedup);

  bool Pass = Speedup >= 1.5;
  std::printf("  gate: %s\n", Pass ? "PASS" : "FAIL");

  benchjson::Emitter E("lowering");
  E.metric("slots", static_cast<uint64_t>(Low.Lowering.SlotsAssigned));
  E.metric("const_folds", static_cast<uint64_t>(Low.Lowering.ConstFolds));
  E.metric("lets_flattened",
           static_cast<uint64_t>(Low.Lowering.LetsFlattened));
  E.metric("consts_interned",
           static_cast<uint64_t>(Low.Lowering.ConstsInterned));
  E.metric("const_pool", static_cast<uint64_t>(Low.Lowering.PoolSize));
  E.metric("eval_lowered_per_s", LowPerS);
  E.metric("eval_unlowered_per_s", TreePerS);
  E.metric("single_path_speedup", Speedup);
  E.metric("single_path_speedup_median", MedianRatio);
  E.metric("single_path_speedup_best_rep", MinRatio);
  E.metric("explore_paths", RL.PathsExplored);
  E.metric("explore_lowered_ms", XLowMs);
  E.metric("explore_unlowered_ms", XTreeMs);
  E.metric("explore_speedup", XSpeedup);
  E.metric("pass", Pass);
  if (!E.write("BENCH_lowering.json"))
    return 1;

  return Pass ? 0 : 1;
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  // Profiling aid: with --benchmark_filter=BM_EvalLowered (or Unlowered)
  // and this set, the process runs exactly one variant, so a sampling
  // profile is not contaminated by the summary's A/B comparison runs.
  if (std::getenv("PERF_LOWERING_BM_ONLY"))
    return 0;
  return loweringSummary();
}
