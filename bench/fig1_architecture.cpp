//===-- bench/fig1_architecture.cpp - regenerate paper Fig. 1 -------------===//
///
/// \file
/// Prints the Cerberus pipeline architecture diagram with per-stage
/// non-comment line counts of *this* implementation, mirroring the paper's
/// Fig. 1 (which reports LOS counts for each Lem specification stage).
///
//===----------------------------------------------------------------------===//

#include "support/Format.h"

#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <string>
#include <vector>

#ifndef CERB_SOURCE_DIR
#define CERB_SOURCE_DIR "."
#endif

namespace {

/// Counts non-comment, non-blank lines across the .h/.cpp/.inc files of a
/// source directory (the analogue of the paper's "lines of specification").
unsigned countLoc(const std::string &Dir) {
  unsigned Total = 0;
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return 0;
  while (dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    auto EndsWith = [&](const char *Suffix) {
      size_t N = strlen(Suffix);
      return Name.size() >= N && Name.compare(Name.size() - N, N, Suffix) == 0;
    };
    if (!EndsWith(".h") && !EndsWith(".cpp") && !EndsWith(".inc"))
      continue;
    std::ifstream F(Dir + "/" + Name);
    std::string Line;
    bool InBlock = false;
    while (std::getline(F, Line)) {
      // Strip leading whitespace.
      size_t I = Line.find_first_not_of(" \t");
      if (I == std::string::npos)
        continue;
      std::string T = Line.substr(I);
      if (InBlock) {
        if (T.find("*/") != std::string::npos)
          InBlock = false;
        continue;
      }
      if (T.rfind("//", 0) == 0)
        continue;
      if (T.rfind("/*", 0) == 0) {
        if (T.find("*/") == std::string::npos)
          InBlock = true;
        continue;
      }
      ++Total;
    }
  }
  closedir(D);
  return Total;
}

} // namespace

int main() {
  std::string Src = std::string(CERB_SOURCE_DIR) + "/src/";
  struct Stage {
    const char *Paper;      ///< paper Fig. 1 stage (with its LOS count)
    const char *Dir;        ///< our module
  };
  const Stage Stages[] = {
      {"parsing (2600)", "cabs"},
      {"Cabs_to_Ail desugaring (2800+600+1100)", "ail"},
      {"type inference/checking (2800)", "typing"},
      {"elaboration (1700)", "elab"},
      {"Core + Core-to-Core transformation (1400+600)", "core"},
      {"Core operational semantics (3100)", "exec"},
      {"memory object model (1500)", "mem"},
      {"operational concurrency model (elsewhere)", "conc"},
  };

  std::printf("Figure 1: pipeline architecture with line counts\n");
  std::printf("(paper stage and its Lem LOS count  ->  this C++ "
              "reproduction)\n");
  std::printf("%s\n", std::string(74, '-').c_str());
  std::printf("C source\n");
  unsigned Total = 0;
  for (const Stage &S : Stages) {
    unsigned Loc = countLoc(Src + S.Dir);
    Total += Loc;
    std::printf("  | %-48s src/%-7s %6u LoC\n", S.Paper, S.Dir, Loc);
  }
  std::printf("  v\nexecutions (exhaustive set / pseudorandom single "
              "path)\n");
  std::printf("%s\n", std::string(74, '-').c_str());
  unsigned Support = countLoc(Src + "support");
  unsigned Extra = countLoc(Src + "defacto") + countLoc(Src + "survey") +
                   countLoc(Src + "tools") + countLoc(Src + "csmith");
  std::printf("pipeline total: %u LoC  (+ support %u, experiment apparatus "
              "%u)\n",
              Total, Support, Extra);
  std::printf("paper total:    ~19000 LOS of Lem + 2600 lines of parser\n");
  return 0;
}
