//===-- bench/bench_json.h - Machine-readable bench results -----*- C++ -*-===//
///
/// \file
/// Shared helper for the perf_* binaries: accumulates named metrics and
/// writes them as a small JSON document ("cerb-bench/1") so CI can upload
/// benchmark trajectories as artifacts (BENCH_oracle.json, BENCH_trace.json)
/// without parsing human-oriented stdout. Metrics keep insertion order.
///
//===----------------------------------------------------------------------===//
#ifndef CERB_BENCH_BENCH_JSON_H
#define CERB_BENCH_BENCH_JSON_H

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace cerb::benchjson {

class Emitter {
public:
  explicit Emitter(std::string Benchmark) : Benchmark(std::move(Benchmark)) {}

  void metric(const std::string &Name, double V) {
    char Buf[64];
    std::snprintf(Buf, sizeof Buf, "%.4f", V);
    Metrics.emplace_back(Name, Buf);
  }
  void metric(const std::string &Name, uint64_t V) {
    Metrics.emplace_back(Name, std::to_string(V));
  }
  void metric(const std::string &Name, bool V) {
    Metrics.emplace_back(Name, V ? "true" : "false");
  }

  std::string json() const {
    std::string J;
    J += "{\n";
    J += "  \"schema\": \"cerb-bench/1\",\n";
    J += "  \"benchmark\": \"" + Benchmark + "\",\n";
    J += "  \"metrics\": {\n";
    for (size_t I = 0; I < Metrics.size(); ++I) {
      J += "    \"" + Metrics[I].first + "\": " + Metrics[I].second;
      J += I + 1 < Metrics.size() ? ",\n" : "\n";
    }
    J += "  }\n";
    J += "}\n";
    return J;
  }

  /// Writes the document; prints a diagnostic and returns false on failure.
  bool write(const std::string &Path) const {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << json();
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "bench: cannot write %s\n", Path.c_str());
      return false;
    }
    std::printf("wrote %s\n", Path.c_str());
    return true;
  }

private:
  std::string Benchmark;
  std::vector<std::pair<std::string, std::string>> Metrics;
};

} // namespace cerb::benchjson

#endif // CERB_BENCH_BENCH_JSON_H
