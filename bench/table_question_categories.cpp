//===-- bench/table_question_categories.cpp - regenerate the §2 table -----===//
///
/// \file
/// T2 — the category table of the 85 design-space questions and the
/// three-way classification bullet list ("for 38 the ISO standard is
/// unclear; for 28 the de facto standards are unclear; for 26 there are
/// significant differences").
///
//===----------------------------------------------------------------------===//

#include "defacto/Questions.h"
#include "defacto/Suite.h"

#include <cstdio>
#include <map>

int main() {
  using namespace cerb::defacto;

  std::printf("T2: the design-space question categories (paper §2)\n");
  std::printf("===================================================\n");
  // How many suite tests we have per category, for the coverage column.
  std::map<std::string, unsigned> SuiteCover;
  for (const TestCase &T : testSuite()) {
    const Question *Q = findQuestion(T.QuestionId);
    SuiteCover[Q ? Q->Category : "CHERI C (§4)"]++;
  }

  std::printf("%-56s %5s %8s\n", "category", "count", "tests");
  for (const Category &C : categories())
    std::printf("%-56s %5u %8u\n", C.Name.c_str(), C.Count,
                SuiteCover.count(C.Name) ? SuiteCover[C.Name] : 0);

  auto T = classificationTotals();
  std::printf("\nTotals: %u questions in the registry (the paper states "
              "%u; its printed\nper-category counts sum to %u — we keep "
              "the printed counts).\n",
              T.Questions, T.PaperStated, T.Questions);
  std::printf("\nClassification (paper: 38 / 28 / 26):\n");
  std::printf("  ISO standard unclear:        %u\n", T.IsoUnclear);
  std::printf("  de facto standards unclear:  %u\n", T.DefactoUnclear);
  std::printf("  ISO vs de facto diverge:     %u\n", T.Diverge);

  std::printf("\nThe paper-cited anchor questions:\n");
  for (const char *Id : {"Q2", "Q5", "Q9", "Q25", "Q31", "Q49", "Q50",
                         "Q52", "Q75"}) {
    const Question *Q = findQuestion(Id);
    std::printf("  %-4s [%s]\n       %s\n", Q->Id.c_str(),
                Q->Category.c_str(), Q->Title.c_str());
  }
  return 0;
}
