# One binary per paper table/figure (T*/F*) plus google-benchmark perf
# series (P*). Included from the top-level CMakeLists so that
# ${CMAKE_BINARY_DIR}/bench contains ONLY the bench executables and the
# README's `for b in build/bench/*; do $b; done` loop runs clean.
function(cerb_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} ${ARGN})
  target_compile_definitions(${name} PRIVATE
    CERB_SOURCE_DIR="${CMAKE_SOURCE_DIR}")
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

cerb_bench(fig1_architecture cerb_support)
cerb_bench(fig2_core_syntax cerb_exec)
cerb_bench(fig3_elaboration_shift cerb_exec)
cerb_bench(table_survey cerb_survey)
cerb_bench(table_question_categories cerb_defacto)
cerb_bench(table_provenance_example cerb_defacto)
cerb_bench(table_tool_comparison cerb_tools)
cerb_bench(table_cheri cerb_defacto)
cerb_bench(table_csmith_validation cerb_csmith)
cerb_bench(table_defacto_status cerb_defacto)
cerb_bench(ablation_policy_knobs cerb_defacto)
cerb_bench(perf_pipeline cerb_csmith benchmark::benchmark)
cerb_bench(perf_exhaustive cerb_exec benchmark::benchmark)
cerb_bench(perf_memory_models cerb_exec benchmark::benchmark)
cerb_bench(perf_oracle_batch cerb_oracle cerb_fuzz benchmark::benchmark)
cerb_bench(perf_trace_overhead cerb_exec benchmark::benchmark)
cerb_bench(perf_lowering cerb_exec benchmark::benchmark)
cerb_bench(perf_serve cerb_serve benchmark::benchmark)
# The worker-pool scaling row spawns the real `cerb serve --workers N`
# binary: process-level parallelism cannot be measured in-process.
target_compile_definitions(perf_serve PRIVATE CERB_BIN="$<TARGET_FILE:cerb>")
add_dependencies(perf_serve cerb)
