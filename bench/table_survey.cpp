//===-- bench/table_survey.cpp - regenerate the §1/§2 survey tables -------===//
///
/// \file
/// Two tables in one binary (they share the dataset):
///  T1 — the §1 expertise demographics of the 323 respondents;
///  T3 — the per-question response counts and percentages the paper quotes
///       in §2 ([2/15], [5/15], [7/15], [9/15], [11/15], ...).
///
//===----------------------------------------------------------------------===//

#include "survey/Survey.h"

#include <cstdio>

int main() {
  using namespace cerb::survey;

  std::printf("T1: survey respondent expertise (paper §1)\n");
  std::printf("==========================================\n");
  std::printf("%s\n", renderExpertise().c_str());

  std::printf("T3: survey questions the paper quotes (§2)\n");
  std::printf("==========================================\n");
  for (const SurveyQuestion &Q : surveyQuestions())
    std::printf("%s\n", renderQuestion(Q).c_str());

  std::printf("Cross-check against the paper's §2 prose:\n");
  const SurveyQuestion *Q25 = findSurveyQuestion("[7/15]");
  std::printf("  Q25 'will that work': paper says 191 (60%%); dataset: %u "
              "(%u%%)\n",
              Q25->Answers[0].Count, percentOf(*Q25, Q25->Answers[0]));
  const SurveyQuestion *Q31 = findSurveyQuestion("[9/15]");
  std::printf("  Q31 transient OOB: paper says 230 (73%%); dataset: %u "
              "(%u%%)\n",
              Q31->Answers[0].Count, percentOf(*Q31, Q31->Answers[0]));
  const SurveyQuestion *Q75 = findSurveyQuestion("[11/15]");
  std::printf("  Q75 char-array storage: paper says 243 (76%%); dataset: %u "
              "(%u%%)\n",
              Q75->Answers[0].Count, percentOf(*Q75, Q75->Answers[0]));
  return 0;
}
