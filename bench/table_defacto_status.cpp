//===-- bench/table_defacto_status.cpp - suite status per model (§6) ------===//
///
/// \file
/// T8 — the §6 status line for the candidate model ("for these our
/// candidate model, which is still work in progress, currently has the
/// intended behaviour only for 9"), generalised: intended-behaviour counts
/// for every test under every model, grouped by question category.
///
//===----------------------------------------------------------------------===//

#include "defacto/Questions.h"
#include "defacto/Suite.h"

#include <cstdio>
#include <map>

int main() {
  using namespace cerb;
  using namespace cerb::defacto;

  std::printf("T8: de facto suite status — intended behaviour per model "
              "(§6)\n");
  std::printf("=============================================================\n");

  const std::vector<mem::MemoryPolicy> Policies =
      mem::MemoryPolicy::allPresets();

  std::map<std::string, std::map<std::string, std::pair<unsigned, unsigned>>>
      ByCat; // category -> model -> {pass, total}
  std::map<std::string, std::pair<unsigned, unsigned>> Totals;

  for (const mem::MemoryPolicy &P : Policies) {
    for (const TestResult &R : runSuite(P)) {
      const Question *Q = findQuestion(R.Test->QuestionId);
      std::string Cat = Q ? Q->Category : "CHERI C (§4)";
      auto &Cell = ByCat[Cat][P.Name];
      auto &Tot = Totals[P.Name];
      ++Cell.second;
      ++Tot.second;
      if (R.Pass) {
        ++Cell.first;
        ++Tot.first;
      }
    }
  }

  std::printf("%-56s %-9s %-8s %-10s %-6s\n", "category", "concrete",
              "defacto", "strict-iso", "cheri");
  for (const auto &[Cat, Models] : ByCat) {
    auto Cell = [&](const char *M) {
      auto It = Models.find(M);
      if (It == Models.end())
        return std::string("-");
      return std::to_string(It->second.first) + "/" +
             std::to_string(It->second.second);
    };
    std::printf("%-56s %-9s %-8s %-10s %-6s\n", Cat.c_str(),
                Cell("concrete").c_str(), Cell("defacto").c_str(),
                Cell("strict-iso").c_str(), Cell("cheri").c_str());
  }
  std::printf("%-56s %u/%u %8u/%u %8u/%u %6u/%u\n", "TOTAL",
              Totals["concrete"].first, Totals["concrete"].second,
              Totals["defacto"].first, Totals["defacto"].second,
              Totals["strict-iso"].first, Totals["strict-iso"].second,
              Totals["cheri"].first, Totals["cheri"].second);
  std::printf("\n(The paper's snapshot had intended behaviour for only 9 "
              "of its de facto\ntests — its candidate model was work in "
              "progress; this reproduction's\ncandidate model passes its "
              "whole suite, i.e. the design it sketches is\nrealisable.)\n");
  return 0;
}
