//===-- examples/cheri_compat.cpp - §4 as a porting advisor ---------------===//
///
/// \file
/// The §4 workflow: "We have run our tests on the CHERI C implementation
/// ... We found several areas where the current CHERI implementation
/// deviates from the expected behaviour." This example plays the role of a
/// pre-porting advisor: it runs a program (your file, or a built-in demo
/// of every §4 pitfall) under the candidate de facto model and under the
/// CHERI capability model, and explains any divergence.
///
///   cheri_compat            # the built-in pitfall demos
///   cheri_compat prog.c     # check your own program
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace cerb;

namespace {

void compare(const std::string &Name, const std::string &Src) {
  std::printf("=== %s\n", Name.c_str());
  auto ProgOr = exec::compile(Src);
  if (!ProgOr) {
    std::printf("  static error: %s\n", ProgOr.error().str().c_str());
    return;
  }
  std::string Results[2];
  const mem::MemoryPolicy Policies[2] = {mem::MemoryPolicy::defacto(),
                                         mem::MemoryPolicy::cheri()};
  for (int I = 0; I < 2; ++I) {
    exec::RunOptions Opts;
    Opts.Policy = Policies[I];
    auto Ex = exec::runExhaustive(*ProgOr, Opts);
    for (const exec::Outcome &O : Ex.Distinct)
      Results[I] += (Results[I].empty() ? "" : " | ") + O.str();
    std::printf("  %-8s -> %s\n", Policies[I].Name.c_str(),
                Results[I].c_str());
  }
  std::printf("  verdict: %s\n\n",
              Results[0] == Results[1]
                  ? "portable to CHERI as-is"
                  : "BEHAVIOUR CHANGES under CHERI - see §4");
}

} // namespace

int main(int argc, char **argv) {
  if (argc > 1) {
    std::ifstream F(argv[1]);
    if (!F) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::stringstream SS;
    SS << F.rdbuf();
    compare(argv[1], SS.str());
    return 0;
  }

  compare("alignment check on a uintptr_t (the §4 offset-AND quirk)", R"(
#include <stdint.h>
long x;
int main(void) {
  uintptr_t i = (uintptr_t)&x;
  __cerb_assert((i & 7u) == 0u); /* defensively written code fails here */
  return 0;
}
)");

  compare("byte-wise pointer copy (tags do not survive byte stores)", R"(
int x = 1;
int main(void) {
  int *p = &x;
  int *q;
  unsigned char *s = (unsigned char *)&p;
  unsigned char *d = (unsigned char *)&q;
  int i;
  for (i = 0; i < 8; i++) d[i] = s[i];
  return *q;
}
)");

  compare("one-past pointer equality (exact-equals compares metadata)", R"(
#include <stdio.h>
int y = 2, x = 1;
int main(void) {
  printf("%d\n", &x + 1 == &y);
  return 0;
}
)");

  compare("a portable program (no pointer tricks)", R"(
#include <stdio.h>
int main(void) {
  int a[4] = {1, 2, 3, 4}, s = 0, i;
  for (i = 0; i < 4; i++) s += a[i];
  printf("%d\n", s);
  return 0;
}
)");
  return 0;
}
