//===-- examples/ub_hunter.cpp - the semantics as a test oracle -----------===//
///
/// \file
/// The paper's headline use-case: "executable as a test oracle, to explore
/// all behaviours or single paths of test programs" (§1). Give it a C file
/// and it reports every distinct allowed outcome under a chosen memory
/// object model, citing the ISO clause of any undefined behaviour found on
/// any path.
///
///   ub_hunter prog.c                # exhaustive, candidate de facto model
///   ub_hunter prog.c concrete      # pick the model
///   ub_hunter prog.c defacto 42    # single pseudorandom path, seed 42
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace cerb;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.c> [concrete|defacto|strict-iso|cheri] "
                 "[seed]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream F(argv[1]);
  if (!F) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream SS;
  SS << F.rdbuf();

  exec::RunOptions Opts;
  if (argc > 2) {
    auto P = mem::MemoryPolicy::byName(argv[2]);
    if (!P) {
      std::fprintf(stderr, "unknown model '%s'\n", argv[2]);
      return 2;
    }
    Opts.Policy = std::move(*P);
  }

  auto ProgOr = exec::compile(SS.str());
  if (!ProgOr) {
    std::printf("static error: %s\n", ProgOr.error().str().c_str());
    return 1;
  }

  if (argc > 3) {
    // Single pseudorandom path (§5.1 single-path mode).
    exec::Outcome O = exec::runRandom(*ProgOr, Opts,
                                      std::strtoull(argv[3], nullptr, 10));
    std::printf("one path (seed %s, model %s): %s\n", argv[3],
                Opts.Policy.Name.c_str(), O.str().c_str());
    return O.Kind == exec::OutcomeKind::Undef ? 1 : 0;
  }

  auto Ex = exec::runExhaustive(*ProgOr, Opts);
  std::printf("model %s: %llu path(s) explored%s, %zu distinct "
              "outcome(s):\n",
              Opts.Policy.Name.c_str(),
              static_cast<unsigned long long>(Ex.PathsExplored),
              Ex.Truncated ? " (budget hit; exploration truncated)" : "",
              Ex.Distinct.size());
  bool AnyUB = false;
  for (const exec::Outcome &O : Ex.Distinct) {
    std::printf("  %s\n", O.str().c_str());
    if (O.Kind == exec::OutcomeKind::Undef) {
      AnyUB = true;
      std::printf("      %s\n", O.UB.str().c_str());
    }
  }
  if (AnyUB)
    std::printf("\nverdict: the program has UNDEFINED BEHAVIOUR on at "
                "least one allowed\nexecution path — a conforming "
                "implementation may do anything with it.\n");
  return AnyUB ? 1 : 0;
}
