//===-- examples/provenance_explorer.cpp - §2 design space, live ----------===//
///
/// \file
/// The paper's §2 investigation as an interactive demo: a handful of
/// contentious pointer-provenance idioms, each executed under all four
/// memory object model instantiations, printing the verdict matrix. Run a
/// test from the built-in de facto suite by name:
///
///   provenance_explorer                      # the default tour
///   provenance_explorer percpu_offset_idiom  # one suite test, all models
///
//===----------------------------------------------------------------------===//

#include "defacto/Questions.h"
#include "defacto/Suite.h"

#include <cstdio>

using namespace cerb;
using namespace cerb::defacto;

static void showTest(const TestCase &T) {
  std::printf("=== %s  [%s]\n", T.Name.c_str(), T.QuestionId.c_str());
  if (const Question *Q = findQuestion(T.QuestionId))
    std::printf("    question: %s\n", Q->Title.c_str());
  std::printf("    %s\n\n%s\n", T.Description.c_str(), T.Source.c_str());
  for (auto P : {mem::MemoryPolicy::concrete(), mem::MemoryPolicy::defacto(),
                 mem::MemoryPolicy::strictIso(), mem::MemoryPolicy::cheri()}) {
    TestResult R = runTest(T, P);
    std::printf("  %-10s ->", P.Name.c_str());
    if (!R.CompileOk) {
      std::printf(" compile error: %s\n", R.CompileError.c_str());
      continue;
    }
    for (const exec::Outcome &O : R.Outcomes.Distinct)
      std::printf(" %s", O.str().c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

int main(int argc, char **argv) {
  if (argc > 1) {
    const TestCase *T = findTest(argv[1]);
    if (!T) {
      std::printf("unknown test '%s'; available tests:\n", argv[1]);
      for (const TestCase &Each : testSuite())
        std::printf("  %s\n", Each.Name.c_str());
      return 1;
    }
    showTest(*T);
    return 0;
  }

  // The default tour: the §2 flashpoints.
  for (const char *Name :
       {"provenance_basic_global_yx", "percpu_offset_idiom",
        "ptr_copy_memcpy", "ptr_rel_distinct_objects", "oob_transient",
        "effective_char_array_storage"})
    showTest(*findTest(Name));

  std::printf("Run with a test name to explore others; `ub_hunter file.c` "
              "runs your own\nprograms through the same oracle.\n");
  return 0;
}
