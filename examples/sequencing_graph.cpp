//===-- examples/sequencing_graph.cpp - the §5.6 sequencing example -------===//
///
/// \file
/// §5.6 analyses `w = x++ + f(z,2);` — its memory actions and their
/// sequenced-before structure. This example elaborates exactly that
/// statement and (1) prints the Core, in which every sequencing decision is
/// syntax (unseq / let weak / let strong / let atomic / indet), and (2)
/// exhaustively executes it, demonstrating that the postfix increment is
/// atomic and the call body indeterminately sequenced — and that a racy
/// variant is detected as an unsequenced race.
///
//===----------------------------------------------------------------------===//

#include "core/Core.h"
#include "core/SeqGraph.h"
#include "exec/Pipeline.h"

#include <cstdio>

using namespace cerb;

static const char *Program = R"(
#include <stdio.h>
int w, x = 10, z = 5;
int f(int a, int b) { return a + b; }
int main(void) {
  w = x++ + f(z, 2);
  printf("w=%d x=%d\n", w, x);
  return 0;
}
)";

int main() {
  std::printf("The paper's §5.6 running example:  w = x++ + f(z,2);\n");
  std::printf("====================================================\n\n");
  std::printf("Actions per §5.6: R x / W x atomic (postfix ++), f's body "
              "indeterminately\nsequenced with them, everything sequenced "
              "before W w.\n\n");

  auto P = exec::compileWithStats(Program);
  if (!P) {
    std::printf("compile error: %s\n", P.error().str().c_str());
    return 1;
  }

  std::printf("---- elaborated Core for main ----\n");
  for (const auto &[Id, Proc] : P->Prog.Procs)
    if (P->Prog.Syms.nameOf(Proc.Name) == "main")
      std::printf("%s\n",
                  core::printExpr(*Proc.Body, P->Prog.Syms, 0).c_str());

  std::printf("\n(note the `let atomic` for x++, the `unseq` of the + "
              "operands, the\n`indet[n](pcall(f, ...))` for the call, and "
              "the negative-polarity\n`neg(store(...))` of the "
              "assignment)\n\n");

  // The §5.6 graph itself, recovered from the Core term: solid
  // sequenced-before arrows, the double arrow of the atomic R x / W x
  // pair, dotted indeterminate sequencing of f's body.
  std::printf("---- the sequenced-before graph (the paper's §5.6 figure) "
              "----\n");
  for (const auto &[Id, Proc] : P->Prog.Procs)
    if (P->Prog.Syms.nameOf(Proc.Name) == "main") {
      core::SeqGraph G = core::buildSeqGraph(*Proc.Body, P->Prog.Syms);
      std::printf("%s\n", G.str().c_str());
    }

  exec::RunOptions Opts;
  auto Ex = exec::runExhaustive(P->Prog, Opts);
  std::printf("---- exhaustive execution: %llu paths, %zu distinct "
              "outcome(s) ----\n",
              static_cast<unsigned long long>(Ex.PathsExplored),
              Ex.Distinct.size());
  for (const exec::Outcome &O : Ex.Distinct)
    std::printf("  %s\n", O.str().c_str());

  std::printf("\n---- the racy variant:  w = x++ + x;  ----\n");
  auto Racy = exec::evaluateExhaustive(R"(
int w, x = 10;
int main(void) {
  w = x++ + x;
  return 0;
}
)");
  if (Racy)
    for (const exec::Outcome &O : Racy->Distinct)
      std::printf("  %s\n", O.str().c_str());
  std::printf("\n(6.5p2: the read of x in the right operand is unsequenced "
              "with the\nincrementing store — an unsequenced race, hence "
              "undefined behaviour.)\n");
  return 0;
}
