//===-- examples/quickstart.cpp - Using the library in 60 lines -----------===//
///
/// \file
/// Quickstart: compile a C program through the full Cerberus-style pipeline
/// (parse -> desugar -> typecheck -> elaborate to Core -> Core dynamics +
/// memory object model), print the elaborated Core, and run it both as a
/// single execution and exhaustively.
///
//===----------------------------------------------------------------------===//

#include "exec/Pipeline.h"

#include <cstdio>

static const char *Program = R"(
#include <stdio.h>

int fib(int n) {
  if (n < 2) return n;
  return fib(n - 1) + fib(n - 2);
}

int main(void) {
  int i;
  for (i = 0; i < 8; i++)
    printf("fib(%d)=%d\n", i, fib(i));
  return 0;
}
)";

int main() {
  using namespace cerb;

  // 1. Compile (the whole Fig. 1 front half).
  auto ProgOr = exec::compileWithStats(Program);
  if (!ProgOr) {
    std::printf("compile error: %s\n", ProgOr.error().str().c_str());
    return 1;
  }

  // 2. Look at the elaborated Core for one procedure (what Fig. 3 shows
  //    for left-shift, here for fib).
  std::printf("=== elaborated Core (excerpt) ===\n");
  std::string Core = core::printProgram(ProgOr->Prog);
  std::printf("%.1200s\n... (%zu bytes total)\n\n", Core.c_str(),
              Core.size());

  // 3. Run once under the candidate de facto memory object model.
  exec::RunOptions Opts;
  exec::Outcome O = exec::runOnce(ProgOr->Prog, Opts);
  std::printf("=== one execution (de facto model) ===\n%s(exit %d)\n\n",
              O.Stdout.c_str(), O.ExitCode);

  // 4. Explore all allowed executions (this program is deterministic, so
  //    there is exactly one distinct outcome).
  auto Ex = exec::runExhaustive(ProgOr->Prog, Opts);
  std::printf("=== exhaustive exploration ===\n"
              "paths explored: %llu, distinct outcomes: %zu\n",
              static_cast<unsigned long long>(Ex.PathsExplored),
              Ex.Distinct.size());
  for (const exec::Outcome &D : Ex.Distinct)
    std::printf("  %s\n", D.str().c_str());
  return 0;
}
