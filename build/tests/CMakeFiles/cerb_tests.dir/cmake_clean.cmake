file(REMOVE_RECURSE
  "CMakeFiles/cerb_tests.dir/test_core.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_core.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_defacto.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_defacto.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_desugar.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_desugar.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_elaborate.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_elaborate.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_eval.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_eval.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_exhaustive.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_exhaustive.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_frontend.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_frontend.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_memory.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_memory.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_properties.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_seqgraph.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_seqgraph.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_support.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_support.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_survey_tools_csmith.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_survey_tools_csmith.cpp.o.d"
  "CMakeFiles/cerb_tests.dir/test_types.cpp.o"
  "CMakeFiles/cerb_tests.dir/test_types.cpp.o.d"
  "cerb_tests"
  "cerb_tests.pdb"
  "cerb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
