
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/cerb_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_defacto.cpp" "tests/CMakeFiles/cerb_tests.dir/test_defacto.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_defacto.cpp.o.d"
  "/root/repo/tests/test_desugar.cpp" "tests/CMakeFiles/cerb_tests.dir/test_desugar.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_desugar.cpp.o.d"
  "/root/repo/tests/test_elaborate.cpp" "tests/CMakeFiles/cerb_tests.dir/test_elaborate.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_elaborate.cpp.o.d"
  "/root/repo/tests/test_eval.cpp" "tests/CMakeFiles/cerb_tests.dir/test_eval.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_eval.cpp.o.d"
  "/root/repo/tests/test_exhaustive.cpp" "tests/CMakeFiles/cerb_tests.dir/test_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_exhaustive.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/cerb_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_memory.cpp" "tests/CMakeFiles/cerb_tests.dir/test_memory.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_memory.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/cerb_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_seqgraph.cpp" "tests/CMakeFiles/cerb_tests.dir/test_seqgraph.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_seqgraph.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/cerb_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_survey_tools_csmith.cpp" "tests/CMakeFiles/cerb_tests.dir/test_survey_tools_csmith.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_survey_tools_csmith.cpp.o.d"
  "/root/repo/tests/test_types.cpp" "tests/CMakeFiles/cerb_tests.dir/test_types.cpp.o" "gcc" "tests/CMakeFiles/cerb_tests.dir/test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/defacto/CMakeFiles/cerb_defacto.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/cerb_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/cerb_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/csmith/CMakeFiles/cerb_csmith.dir/DependInfo.cmake"
  "/root/repo/build/src/conc/CMakeFiles/cerb_conc.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/cerb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/elab/CMakeFiles/cerb_elab.dir/DependInfo.cmake"
  "/root/repo/build/src/typing/CMakeFiles/cerb_typing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cerb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cerb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ail/CMakeFiles/cerb_ail.dir/DependInfo.cmake"
  "/root/repo/build/src/cabs/CMakeFiles/cerb_cabs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cerb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
