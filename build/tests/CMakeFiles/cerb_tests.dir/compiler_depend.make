# Empty compiler generated dependencies file for cerb_tests.
# This may be replaced when dependencies are built.
