# Empty dependencies file for sequencing_graph.
# This may be replaced when dependencies are built.
