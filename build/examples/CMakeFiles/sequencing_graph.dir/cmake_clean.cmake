file(REMOVE_RECURSE
  "CMakeFiles/sequencing_graph.dir/sequencing_graph.cpp.o"
  "CMakeFiles/sequencing_graph.dir/sequencing_graph.cpp.o.d"
  "sequencing_graph"
  "sequencing_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequencing_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
