file(REMOVE_RECURSE
  "CMakeFiles/ub_hunter.dir/ub_hunter.cpp.o"
  "CMakeFiles/ub_hunter.dir/ub_hunter.cpp.o.d"
  "ub_hunter"
  "ub_hunter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ub_hunter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
