# Empty compiler generated dependencies file for ub_hunter.
# This may be replaced when dependencies are built.
