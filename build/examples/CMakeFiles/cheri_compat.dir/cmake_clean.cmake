file(REMOVE_RECURSE
  "CMakeFiles/cheri_compat.dir/cheri_compat.cpp.o"
  "CMakeFiles/cheri_compat.dir/cheri_compat.cpp.o.d"
  "cheri_compat"
  "cheri_compat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cheri_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
