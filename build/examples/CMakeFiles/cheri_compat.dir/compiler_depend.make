# Empty compiler generated dependencies file for cheri_compat.
# This may be replaced when dependencies are built.
