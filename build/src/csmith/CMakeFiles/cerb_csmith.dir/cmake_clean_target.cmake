file(REMOVE_RECURSE
  "libcerb_csmith.a"
)
