file(REMOVE_RECURSE
  "CMakeFiles/cerb_csmith.dir/Differential.cpp.o"
  "CMakeFiles/cerb_csmith.dir/Differential.cpp.o.d"
  "CMakeFiles/cerb_csmith.dir/Generator.cpp.o"
  "CMakeFiles/cerb_csmith.dir/Generator.cpp.o.d"
  "libcerb_csmith.a"
  "libcerb_csmith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_csmith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
