# Empty dependencies file for cerb_csmith.
# This may be replaced when dependencies are built.
