
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ail/Ail.cpp" "src/ail/CMakeFiles/cerb_ail.dir/Ail.cpp.o" "gcc" "src/ail/CMakeFiles/cerb_ail.dir/Ail.cpp.o.d"
  "/root/repo/src/ail/CType.cpp" "src/ail/CMakeFiles/cerb_ail.dir/CType.cpp.o" "gcc" "src/ail/CMakeFiles/cerb_ail.dir/CType.cpp.o.d"
  "/root/repo/src/ail/Desugar.cpp" "src/ail/CMakeFiles/cerb_ail.dir/Desugar.cpp.o" "gcc" "src/ail/CMakeFiles/cerb_ail.dir/Desugar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/cerb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/cabs/CMakeFiles/cerb_cabs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
