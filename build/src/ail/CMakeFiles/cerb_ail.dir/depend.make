# Empty dependencies file for cerb_ail.
# This may be replaced when dependencies are built.
