file(REMOVE_RECURSE
  "CMakeFiles/cerb_ail.dir/Ail.cpp.o"
  "CMakeFiles/cerb_ail.dir/Ail.cpp.o.d"
  "CMakeFiles/cerb_ail.dir/CType.cpp.o"
  "CMakeFiles/cerb_ail.dir/CType.cpp.o.d"
  "CMakeFiles/cerb_ail.dir/Desugar.cpp.o"
  "CMakeFiles/cerb_ail.dir/Desugar.cpp.o.d"
  "libcerb_ail.a"
  "libcerb_ail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_ail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
