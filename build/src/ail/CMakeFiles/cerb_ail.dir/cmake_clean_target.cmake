file(REMOVE_RECURSE
  "libcerb_ail.a"
)
