# Empty dependencies file for cerb_core.
# This may be replaced when dependencies are built.
