file(REMOVE_RECURSE
  "CMakeFiles/cerb_core.dir/Core.cpp.o"
  "CMakeFiles/cerb_core.dir/Core.cpp.o.d"
  "CMakeFiles/cerb_core.dir/SeqGraph.cpp.o"
  "CMakeFiles/cerb_core.dir/SeqGraph.cpp.o.d"
  "libcerb_core.a"
  "libcerb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
