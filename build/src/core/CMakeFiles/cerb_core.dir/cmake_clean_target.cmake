file(REMOVE_RECURSE
  "libcerb_core.a"
)
