file(REMOVE_RECURSE
  "CMakeFiles/cerb_survey.dir/Survey.cpp.o"
  "CMakeFiles/cerb_survey.dir/Survey.cpp.o.d"
  "libcerb_survey.a"
  "libcerb_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
