file(REMOVE_RECURSE
  "libcerb_survey.a"
)
