# Empty compiler generated dependencies file for cerb_survey.
# This may be replaced when dependencies are built.
