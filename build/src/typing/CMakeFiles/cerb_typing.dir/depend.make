# Empty dependencies file for cerb_typing.
# This may be replaced when dependencies are built.
