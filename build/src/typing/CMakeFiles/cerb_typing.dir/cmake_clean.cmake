file(REMOVE_RECURSE
  "CMakeFiles/cerb_typing.dir/TypeCheck.cpp.o"
  "CMakeFiles/cerb_typing.dir/TypeCheck.cpp.o.d"
  "libcerb_typing.a"
  "libcerb_typing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_typing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
