file(REMOVE_RECURSE
  "libcerb_typing.a"
)
