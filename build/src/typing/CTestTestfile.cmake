# CMake generated Testfile for 
# Source directory: /root/repo/src/typing
# Build directory: /root/repo/build/src/typing
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
