# Empty compiler generated dependencies file for cerb_exec.
# This may be replaced when dependencies are built.
