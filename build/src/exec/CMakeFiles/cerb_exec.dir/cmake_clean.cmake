file(REMOVE_RECURSE
  "CMakeFiles/cerb_exec.dir/Builtins.cpp.o"
  "CMakeFiles/cerb_exec.dir/Builtins.cpp.o.d"
  "CMakeFiles/cerb_exec.dir/Driver.cpp.o"
  "CMakeFiles/cerb_exec.dir/Driver.cpp.o.d"
  "CMakeFiles/cerb_exec.dir/Evaluator.cpp.o"
  "CMakeFiles/cerb_exec.dir/Evaluator.cpp.o.d"
  "CMakeFiles/cerb_exec.dir/Pipeline.cpp.o"
  "CMakeFiles/cerb_exec.dir/Pipeline.cpp.o.d"
  "libcerb_exec.a"
  "libcerb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
