file(REMOVE_RECURSE
  "libcerb_exec.a"
)
