file(REMOVE_RECURSE
  "CMakeFiles/cerb_defacto.dir/Questions.cpp.o"
  "CMakeFiles/cerb_defacto.dir/Questions.cpp.o.d"
  "CMakeFiles/cerb_defacto.dir/Suite.cpp.o"
  "CMakeFiles/cerb_defacto.dir/Suite.cpp.o.d"
  "CMakeFiles/cerb_defacto.dir/SuitePart2.cpp.o"
  "CMakeFiles/cerb_defacto.dir/SuitePart2.cpp.o.d"
  "libcerb_defacto.a"
  "libcerb_defacto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_defacto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
