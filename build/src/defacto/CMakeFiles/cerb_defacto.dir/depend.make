# Empty dependencies file for cerb_defacto.
# This may be replaced when dependencies are built.
