file(REMOVE_RECURSE
  "libcerb_defacto.a"
)
