# Empty compiler generated dependencies file for cerb_support.
# This may be replaced when dependencies are built.
