file(REMOVE_RECURSE
  "CMakeFiles/cerb_support.dir/Format.cpp.o"
  "CMakeFiles/cerb_support.dir/Format.cpp.o.d"
  "libcerb_support.a"
  "libcerb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
