file(REMOVE_RECURSE
  "libcerb_support.a"
)
