# Empty compiler generated dependencies file for cerb_tools.
# This may be replaced when dependencies are built.
