file(REMOVE_RECURSE
  "CMakeFiles/cerb_tools.dir/Profiles.cpp.o"
  "CMakeFiles/cerb_tools.dir/Profiles.cpp.o.d"
  "libcerb_tools.a"
  "libcerb_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
