file(REMOVE_RECURSE
  "libcerb_tools.a"
)
