file(REMOVE_RECURSE
  "CMakeFiles/cerb_mem.dir/Memory.cpp.o"
  "CMakeFiles/cerb_mem.dir/Memory.cpp.o.d"
  "libcerb_mem.a"
  "libcerb_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
