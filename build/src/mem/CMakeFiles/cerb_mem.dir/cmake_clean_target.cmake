file(REMOVE_RECURSE
  "libcerb_mem.a"
)
