# Empty dependencies file for cerb_mem.
# This may be replaced when dependencies are built.
