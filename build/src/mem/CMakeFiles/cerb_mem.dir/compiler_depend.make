# Empty compiler generated dependencies file for cerb_mem.
# This may be replaced when dependencies are built.
