# Empty compiler generated dependencies file for cerb_cabs.
# This may be replaced when dependencies are built.
