file(REMOVE_RECURSE
  "CMakeFiles/cerb_cabs.dir/Lexer.cpp.o"
  "CMakeFiles/cerb_cabs.dir/Lexer.cpp.o.d"
  "CMakeFiles/cerb_cabs.dir/Parser.cpp.o"
  "CMakeFiles/cerb_cabs.dir/Parser.cpp.o.d"
  "libcerb_cabs.a"
  "libcerb_cabs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_cabs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
