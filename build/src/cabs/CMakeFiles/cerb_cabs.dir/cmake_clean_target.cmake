file(REMOVE_RECURSE
  "libcerb_cabs.a"
)
