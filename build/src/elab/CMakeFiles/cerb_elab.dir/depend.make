# Empty dependencies file for cerb_elab.
# This may be replaced when dependencies are built.
