file(REMOVE_RECURSE
  "libcerb_elab.a"
)
