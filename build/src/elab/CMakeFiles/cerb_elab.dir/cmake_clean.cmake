file(REMOVE_RECURSE
  "CMakeFiles/cerb_elab.dir/Elaborate.cpp.o"
  "CMakeFiles/cerb_elab.dir/Elaborate.cpp.o.d"
  "libcerb_elab.a"
  "libcerb_elab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_elab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
