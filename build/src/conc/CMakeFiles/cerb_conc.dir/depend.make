# Empty dependencies file for cerb_conc.
# This may be replaced when dependencies are built.
