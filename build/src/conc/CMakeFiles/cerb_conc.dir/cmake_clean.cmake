file(REMOVE_RECURSE
  "CMakeFiles/cerb_conc.dir/Conc.cpp.o"
  "CMakeFiles/cerb_conc.dir/Conc.cpp.o.d"
  "libcerb_conc.a"
  "libcerb_conc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cerb_conc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
