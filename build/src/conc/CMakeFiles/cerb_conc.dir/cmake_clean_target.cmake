file(REMOVE_RECURSE
  "libcerb_conc.a"
)
