# Empty dependencies file for table_tool_comparison.
# This may be replaced when dependencies are built.
