file(REMOVE_RECURSE
  "CMakeFiles/table_tool_comparison.dir/bench/table_tool_comparison.cpp.o"
  "CMakeFiles/table_tool_comparison.dir/bench/table_tool_comparison.cpp.o.d"
  "bench/table_tool_comparison"
  "bench/table_tool_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_tool_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
