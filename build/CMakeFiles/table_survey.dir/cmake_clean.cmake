file(REMOVE_RECURSE
  "CMakeFiles/table_survey.dir/bench/table_survey.cpp.o"
  "CMakeFiles/table_survey.dir/bench/table_survey.cpp.o.d"
  "bench/table_survey"
  "bench/table_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
