# Empty dependencies file for table_survey.
# This may be replaced when dependencies are built.
