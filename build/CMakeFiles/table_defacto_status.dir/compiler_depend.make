# Empty compiler generated dependencies file for table_defacto_status.
# This may be replaced when dependencies are built.
