file(REMOVE_RECURSE
  "CMakeFiles/table_defacto_status.dir/bench/table_defacto_status.cpp.o"
  "CMakeFiles/table_defacto_status.dir/bench/table_defacto_status.cpp.o.d"
  "bench/table_defacto_status"
  "bench/table_defacto_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_defacto_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
