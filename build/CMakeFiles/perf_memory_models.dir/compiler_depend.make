# Empty compiler generated dependencies file for perf_memory_models.
# This may be replaced when dependencies are built.
