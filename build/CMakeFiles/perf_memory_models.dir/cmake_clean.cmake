file(REMOVE_RECURSE
  "CMakeFiles/perf_memory_models.dir/bench/perf_memory_models.cpp.o"
  "CMakeFiles/perf_memory_models.dir/bench/perf_memory_models.cpp.o.d"
  "bench/perf_memory_models"
  "bench/perf_memory_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_memory_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
