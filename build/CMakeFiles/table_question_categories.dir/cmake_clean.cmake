file(REMOVE_RECURSE
  "CMakeFiles/table_question_categories.dir/bench/table_question_categories.cpp.o"
  "CMakeFiles/table_question_categories.dir/bench/table_question_categories.cpp.o.d"
  "bench/table_question_categories"
  "bench/table_question_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_question_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
