# Empty dependencies file for table_question_categories.
# This may be replaced when dependencies are built.
