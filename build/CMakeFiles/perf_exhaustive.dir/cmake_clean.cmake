file(REMOVE_RECURSE
  "CMakeFiles/perf_exhaustive.dir/bench/perf_exhaustive.cpp.o"
  "CMakeFiles/perf_exhaustive.dir/bench/perf_exhaustive.cpp.o.d"
  "bench/perf_exhaustive"
  "bench/perf_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
