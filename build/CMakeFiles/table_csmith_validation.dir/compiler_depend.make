# Empty compiler generated dependencies file for table_csmith_validation.
# This may be replaced when dependencies are built.
