file(REMOVE_RECURSE
  "CMakeFiles/table_csmith_validation.dir/bench/table_csmith_validation.cpp.o"
  "CMakeFiles/table_csmith_validation.dir/bench/table_csmith_validation.cpp.o.d"
  "bench/table_csmith_validation"
  "bench/table_csmith_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_csmith_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
