# Empty dependencies file for ablation_policy_knobs.
# This may be replaced when dependencies are built.
