
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_policy_knobs.cpp" "CMakeFiles/ablation_policy_knobs.dir/bench/ablation_policy_knobs.cpp.o" "gcc" "CMakeFiles/ablation_policy_knobs.dir/bench/ablation_policy_knobs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/defacto/CMakeFiles/cerb_defacto.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/cerb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/elab/CMakeFiles/cerb_elab.dir/DependInfo.cmake"
  "/root/repo/build/src/typing/CMakeFiles/cerb_typing.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cerb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cerb_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ail/CMakeFiles/cerb_ail.dir/DependInfo.cmake"
  "/root/repo/build/src/cabs/CMakeFiles/cerb_cabs.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cerb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
