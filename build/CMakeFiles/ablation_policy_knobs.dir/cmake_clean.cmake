file(REMOVE_RECURSE
  "CMakeFiles/ablation_policy_knobs.dir/bench/ablation_policy_knobs.cpp.o"
  "CMakeFiles/ablation_policy_knobs.dir/bench/ablation_policy_knobs.cpp.o.d"
  "bench/ablation_policy_knobs"
  "bench/ablation_policy_knobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_policy_knobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
