# Empty compiler generated dependencies file for fig2_core_syntax.
# This may be replaced when dependencies are built.
