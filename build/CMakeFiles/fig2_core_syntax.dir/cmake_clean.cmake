file(REMOVE_RECURSE
  "CMakeFiles/fig2_core_syntax.dir/bench/fig2_core_syntax.cpp.o"
  "CMakeFiles/fig2_core_syntax.dir/bench/fig2_core_syntax.cpp.o.d"
  "bench/fig2_core_syntax"
  "bench/fig2_core_syntax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_core_syntax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
