file(REMOVE_RECURSE
  "CMakeFiles/fig1_architecture.dir/bench/fig1_architecture.cpp.o"
  "CMakeFiles/fig1_architecture.dir/bench/fig1_architecture.cpp.o.d"
  "bench/fig1_architecture"
  "bench/fig1_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
