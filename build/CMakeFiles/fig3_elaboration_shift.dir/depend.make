# Empty dependencies file for fig3_elaboration_shift.
# This may be replaced when dependencies are built.
