file(REMOVE_RECURSE
  "CMakeFiles/fig3_elaboration_shift.dir/bench/fig3_elaboration_shift.cpp.o"
  "CMakeFiles/fig3_elaboration_shift.dir/bench/fig3_elaboration_shift.cpp.o.d"
  "bench/fig3_elaboration_shift"
  "bench/fig3_elaboration_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_elaboration_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
