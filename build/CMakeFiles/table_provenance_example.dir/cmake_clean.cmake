file(REMOVE_RECURSE
  "CMakeFiles/table_provenance_example.dir/bench/table_provenance_example.cpp.o"
  "CMakeFiles/table_provenance_example.dir/bench/table_provenance_example.cpp.o.d"
  "bench/table_provenance_example"
  "bench/table_provenance_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_provenance_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
