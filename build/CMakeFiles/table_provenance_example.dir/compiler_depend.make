# Empty compiler generated dependencies file for table_provenance_example.
# This may be replaced when dependencies are built.
