file(REMOVE_RECURSE
  "CMakeFiles/table_cheri.dir/bench/table_cheri.cpp.o"
  "CMakeFiles/table_cheri.dir/bench/table_cheri.cpp.o.d"
  "bench/table_cheri"
  "bench/table_cheri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_cheri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
