# Empty compiler generated dependencies file for table_cheri.
# This may be replaced when dependencies are built.
