#!/bin/sh
# Benchmark trajectory: builds Release and runs the perf series that emit
# machine-readable results (bench/bench_json.h), leaving BENCH_oracle.json
# and BENCH_trace.json in $BENCH_OUT for CI to upload as artifacts. The
# perf_trace_overhead binary also enforces the <2% disabled-path tracing
# overhead bound (non-zero exit on violation).
#
# Environment:
#   BUILD_DIR   build tree (default: <repo>/build-bench, Release)
#   JOBS        compile parallelism (default: nproc)
#   BENCH_OUT   where the BENCH_*.json land (default: current directory)
#   CMAKE_ARGS  extra cmake configure arguments (e.g. a ccache launcher)
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-bench}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
OUT="${BENCH_OUT:-$(pwd)}"

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release ${CMAKE_ARGS:-}
cmake --build "$BUILD" -j "$JOBS" \
    --target perf_oracle_batch perf_trace_overhead perf_lowering perf_serve

mkdir -p "$OUT"
cd "$OUT"
"$BUILD/bench/perf_oracle_batch" --benchmark_min_time=0.1
"$BUILD/bench/perf_trace_overhead" --benchmark_min_time=0.1
# Core lowering speedup; enforces the >=1.5x single-path evaluation bound.
"$BUILD/bench/perf_lowering" --benchmark_min_time=0.1
# Daemon cold/warm latency and QPS; enforces the >=50x warm-repeat bound.
"$BUILD/bench/perf_serve"
echo "bench.sh: results in $OUT/BENCH_oracle.json, $OUT/BENCH_trace.json," \
     "$OUT/BENCH_lowering.json, and $OUT/BENCH_serve.json"
