#!/bin/sh
# CI-enforced CLI reference: the fenced block between the
# `cli-help:begin` / `cli-help:end` markers in docs/cli.md must match
# `cerb --help` byte for byte (after normalizing the invocation path in
# the usage line to the bare name `cerb`). Run by the `docs` stage of
# scripts/ci.sh and .github/workflows/ci.yml, so a flag added to
# src/tools/cerb_main.cpp without a docs/cli.md update fails the gate.
#
# Usage:
#   scripts/check_docs.sh [path/to/cerb]            # verify (default)
#   scripts/check_docs.sh --update [path/to/cerb]   # rewrite the block
#
# The binary defaults to <repo>/build/cerb.
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
DOC="$ROOT/docs/cli.md"

UPDATE=0
if [ "${1:-}" = "--update" ]; then
    UPDATE=1
    shift
fi
CERB="${1:-$ROOT/build/cerb}"

if [ ! -x "$CERB" ]; then
    echo "check_docs.sh: cerb binary not found at '$CERB'" >&2
    echo "check_docs.sh: build it first, or pass the path explicitly" >&2
    exit 2
fi
if [ ! -f "$DOC" ]; then
    echo "check_docs.sh: $DOC is missing" >&2
    exit 2
fi

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

# The authoritative text: --help with the invocation path normalized, so
# the committed doc does not depend on where the binary was built.
"$CERB" --help 2>&1 | sed '1s|^usage: .*cerb |usage: cerb |' \
    > "$TMP/help.actual"

# The documented text: everything strictly between the fence lines that
# directly follow/precede the markers.
awk '
    /<!-- cli-help:begin/ { wait_fence = 1; next }
    /<!-- cli-help:end/   { in_block = 0; wait_fence = 0; next }
    wait_fence && /^```/  { in_block = 1; wait_fence = 0; next }
    in_block && /^```$/   { in_block = 0; next }
    in_block              { print }
' "$DOC" > "$TMP/help.documented"

if [ ! -s "$TMP/help.documented" ]; then
    echo "check_docs.sh: no cli-help block found in docs/cli.md" >&2
    exit 1
fi

if [ "$UPDATE" = 1 ]; then
    awk -v helpfile="$TMP/help.actual" '
        /<!-- cli-help:begin/ {
            print; print "```"
            while ((getline line < helpfile) > 0) print line
            close(helpfile)
            print "```"; skipping = 1; next
        }
        /<!-- cli-help:end/ { skipping = 0 }
        !skipping { print }
    ' "$DOC" > "$TMP/cli.md.new"
    mv "$TMP/cli.md.new" "$DOC"
    echo "check_docs.sh: docs/cli.md help block regenerated"
    exit 0
fi

if ! diff -u "$TMP/help.documented" "$TMP/help.actual" \
        > "$TMP/help.diff" 2>&1; then
    echo "check_docs.sh: docs/cli.md is out of date with 'cerb --help':" >&2
    cat "$TMP/help.diff" >&2
    echo >&2
    echo "check_docs.sh: regenerate with: scripts/check_docs.sh --update" >&2
    exit 1
fi
echo "check_docs.sh: docs/cli.md matches 'cerb --help'"
