#!/bin/sh
# Tier-1 verify: the one command CI and humans both run (see ROADMAP.md).
# Builds everything and runs the full test suite; exits non-zero on any
# failure.
set -e

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$JOBS"
cd "$BUILD" && ctest --output-on-failure -j "$JOBS"
