#!/bin/sh
# Tier-1 verify: the fast gate CI and humans both run on every change
# (see ROADMAP.md). Builds everything and runs the tests labelled `tier1`;
# exits non-zero on any failure. The slow golden-outcome sweep carries the
# `slow`/`golden` labels and is run by scripts/ci.sh (or plain `ctest`).
set -e

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$JOBS"
cd "$BUILD" && ctest --output-on-failure -L tier1 -j "$JOBS"
