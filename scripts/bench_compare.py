#!/usr/bin/env python3
"""Compare BENCH_*.json results against committed baselines.

Usage:
    bench_compare.py --baselines bench/baselines --current . \
        [--threshold 0.10] [--report bench_compare.md]

Reads every cerb-bench/1 document in the baseline directory, pairs it with
the same-named file in the current directory, and compares metric by
metric. Direction semantics are inferred from the metric name:

  lower is better   *_ms, *_ns_per_check, *_overhead_pct
  higher is better  *_qps, *_speedup, *_scaling, *_qps_1, *_qps_4
  must hold         booleans that are true in the baseline (byte-identity,
                    pass flags)
  informational     everything else (counts, configuration echoes)

A gated metric that moves more than --threshold (default 10%) in the bad
direction is a regression: it is listed in the report and the script exits
1 so the (non-gating) CI job surfaces a warning annotation. Missing
current files or metrics are regressions too — a bench that silently
stops emitting a number is how perf losses hide.

Hardware-sensitive gates: scaling/QPS metrics move with runner core
counts. The committed baselines are regenerated with scripts/bench.sh on
the CI runner class; local runs on different hardware should compare
against their own baselines (BENCH_OUT=... scripts/bench.sh).
"""

import argparse
import json
import math
import os
import sys

LOWER_IS_BETTER = ("_ms", "_ns_per_check", "_overhead_pct")
HIGHER_IS_BETTER = ("_qps", "_speedup", "_scaling", "_qps_1", "_qps_4")


def direction(name: str) -> str:
    """'lower', 'higher', or 'info' for a metric name."""
    if name.endswith(LOWER_IS_BETTER):
        return "lower"
    if name.endswith(HIGHER_IS_BETTER):
        return "higher"
    return "info"


def load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "cerb-bench/1":
        raise ValueError(f"{path}: unexpected schema {doc.get('schema')!r}")
    return doc


def compare_doc(name, base, cur, threshold, rows, regressions):
    base_metrics = base["metrics"]
    cur_metrics = cur["metrics"] if cur else {}
    for metric, bval in base_metrics.items():
        cval = cur_metrics.get(metric)
        if cval is None:
            regressions.append(f"{name}:{metric} missing from current run")
            rows.append((name, metric, bval, "MISSING", "", "regression"))
            continue
        if isinstance(bval, bool):
            # A boolean gate that held in the baseline must keep holding.
            if bval and not cval:
                regressions.append(f"{name}:{metric} flipped true -> false")
                rows.append((name, metric, bval, cval, "", "regression"))
            else:
                rows.append((name, metric, bval, cval, "", "ok"))
            continue
        d = direction(metric)
        try:
            bnum, cnum = float(bval), float(cval)
        except (TypeError, ValueError):
            rows.append((name, metric, bval, cval, "", "info"))
            continue
        if d == "info" or bnum == 0 or not math.isfinite(bnum):
            rows.append((name, metric, bval, cval, "", "info"))
            continue
        delta = (cnum - bnum) / abs(bnum)
        shown = f"{delta:+.1%}"
        worse = delta > threshold if d == "lower" else delta < -threshold
        if worse:
            regressions.append(
                f"{name}:{metric} {bnum:g} -> {cnum:g} ({shown}, "
                f"{d} is better)"
            )
            rows.append((name, metric, bval, cval, shown, "regression"))
        else:
            rows.append((name, metric, bval, cval, shown, "ok"))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baselines", required=True,
                    help="directory of committed BENCH_*.json baselines")
    ap.add_argument("--current", required=True,
                    help="directory holding this run's BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative regression threshold (default 0.10)")
    ap.add_argument("--report", default=None,
                    help="also write a markdown report here (CI artifact)")
    args = ap.parse_args()

    baselines = sorted(
        f for f in os.listdir(args.baselines)
        if f.startswith("BENCH_") and f.endswith(".json")
    )
    if not baselines:
        print(f"bench_compare: no baselines in {args.baselines}",
              file=sys.stderr)
        return 2

    rows, regressions = [], []
    for fname in baselines:
        name = fname[len("BENCH_"):-len(".json")]
        base = load(os.path.join(args.baselines, fname))
        cur_path = os.path.join(args.current, fname)
        if not os.path.exists(cur_path):
            regressions.append(f"{name}: {fname} not produced by this run")
            rows.append((name, "<file>", "present", "MISSING", "",
                         "regression"))
            continue
        compare_doc(name, base, load(cur_path), args.threshold, rows,
                    regressions)

    lines = ["# Benchmark comparison", "",
             f"Threshold: ±{args.threshold:.0%} on gated metrics "
             f"(`*_ms` lower, `*_qps`/`*_speedup`/`*_scaling` higher, "
             "true booleans must hold).", "",
             "| bench | metric | baseline | current | delta | status |",
             "|---|---|---|---|---|---|"]
    for name, metric, bval, cval, delta, status in rows:
        flag = {"ok": "", "info": "·", "regression": "**REGRESSION**"}[status]
        lines.append(f"| {name} | {metric} | {bval} | {cval} | {delta} "
                     f"| {flag} |")
    lines.append("")
    if regressions:
        lines.append(f"## {len(regressions)} regression(s)")
        lines.extend(f"- {r}" for r in regressions)
    else:
        lines.append("No regressions beyond the threshold.")
    report = "\n".join(lines) + "\n"

    print(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(report)

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
