#!/usr/bin/env bash
# End-to-end smoke of the evaluation daemon through the real CLI:
#   - start `cerb serve` with a persistent cache,
#   - issue concurrent cold queries, then warm repeats,
#   - assert warm bytes are identical to cold bytes,
#   - ship the whole directory as one `cerb suite --server` batch, repeat
#     it warm at a different pipeline depth and under a torn-read fault,
#     and assert all three combined reports are byte-identical,
#   - SIGTERM with a request in flight and assert a clean, zero-drop drain.
# Usage: serve_smoke.sh /path/to/cerb
set -u

CERB=${1:?usage: serve_smoke.sh /path/to/cerb}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/cerb-serve-smoke.XXXXXX")
SOCK="$WORK/d.sock"
FAILED=0
SERVE_PID=

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  FAILED=1
}

cleanup() {
  if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
    kill -KILL "$SERVE_PID" 2>/dev/null
    wait "$SERVE_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# Three distinct programs: two trivial, one branchy (unsequenced updates
# explore several paths, so the cold evaluation does real work).
cat > "$WORK/t1.c" <<'EOF'
int main(void) { int x = 5; int *p = &x; return *p - 5; }
EOF
cat > "$WORK/t2.c" <<'EOF'
int main(void) { int a[2] = {1, 2}; return a[0] + a[1] - 3; }
EOF
cat > "$WORK/t3.c" <<'EOF'
#include <stdio.h>
int g;
int main(void) {
  int a = (g = 1) + (g = 2);
  printf("%d %d\n", a, g);
  return 0;
}
EOF

"$CERB" serve --socket "$SOCK" --cache-dir "$WORK/cache" --jobs 2 --quiet &
SERVE_PID=$!

# Wait for the daemon to come up.
up=0
for _ in $(seq 1 100); do
  if "$CERB" query --socket "$SOCK" --op ping >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.1
done
[ "$up" = 1 ] || { fail "daemon did not come up"; exit 1; }

# Concurrent cold queries (distinct sources, all presets).
for i in 1 2 3; do
  "$CERB" query "$WORK/t$i.c" --socket "$SOCK" \
    --policies concrete,defacto,strict-iso,cheri \
    --report "$WORK/cold$i.json" --quiet &
done
wait_rc=0
for job in $(jobs -p); do
  [ "$job" = "$SERVE_PID" ] && continue
  wait "$job" || wait_rc=1
done
[ "$wait_rc" = 0 ] || fail "a cold query failed"
for i in 1 2 3; do
  [ -s "$WORK/cold$i.json" ] || fail "cold$i.json missing or empty"
done

# Warm repeats must be byte-identical to the cold runs.
for i in 1 2 3; do
  "$CERB" query "$WORK/t$i.c" --socket "$SOCK" \
    --policies concrete,defacto,strict-iso,cheri \
    --report "$WORK/warm$i.json" --quiet || fail "warm query $i failed"
  cmp -s "$WORK/cold$i.json" "$WORK/warm$i.json" ||
    fail "warm$i.json differs from cold$i.json (cache replay not byte-identical)"
done

# Robustness through the real CLI: inject a deterministic client-side
# fault (the first socket write in the query process dies with EPIPE) and
# assert the retry path recovers with byte-identical results. The daemon
# is untouched — this exercises reconnect + backoff end to end.
"$CERB" query "$WORK/t1.c" --socket "$SOCK" \
  --policies concrete,defacto,strict-iso,cheri \
  --faults 'seed=3;socket.write,nth=1,errno=EPIPE' --retries 3 \
  --report "$WORK/faulted.json" --quiet ||
  fail "fault-injected query did not recover via retry"
cmp -s "$WORK/cold1.json" "$WORK/faulted.json" ||
  fail "faulted.json differs from cold1.json (retry corrupted the reply)"

# A bad fault spec must be rejected up front, not half-applied.
if "$CERB" query --socket "$SOCK" --op ping --faults 'seed=nope' \
     >/dev/null 2>&1; then
  fail "malformed --faults spec was accepted"
fi

# Cache observability: the daemon must report hits for the warm round.
STATS=$("$CERB" query --socket "$SOCK" --op stats) || fail "stats op failed"
case "$STATS" in
*'"memory_hits": 0'*) fail "expected memory hits after warm queries: $STATS" ;;
esac

# Batch rounds: the whole directory as one `cerb suite --server` batch.
# Round 1 populates the combined report; round 2 repeats it warm at a
# deliberately different pipeline depth (chunked frames instead of one);
# round 3 arms a deterministic torn read (the client's first reply read
# dies with ECONNRESET) so the idempotent resend path runs end to end.
# All three combined reports must be byte-identical.
"$CERB" suite "$WORK" --server "$SOCK" \
  --report "$WORK/batch1.json" --quiet || fail "batch suite round failed"
[ -s "$WORK/batch1.json" ] || fail "batch1.json missing or empty"
"$CERB" suite "$WORK" --server "$SOCK" --pipeline-depth 2 \
  --report "$WORK/batch2.json" --quiet || fail "chunked batch round failed"
cmp -s "$WORK/batch1.json" "$WORK/batch2.json" ||
  fail "batch2.json differs from batch1.json (pipeline depth leaked into bytes)"
"$CERB" suite "$WORK" --server "$SOCK" \
  --faults 'seed=5;socket.read,nth=1,errno=ECONNRESET' --retries 3 \
  --report "$WORK/batch3.json" --quiet ||
  fail "fault-injected batch did not recover via resend"
cmp -s "$WORK/batch1.json" "$WORK/batch3.json" ||
  fail "batch3.json differs from batch1.json (resend corrupted the stream)"

# The daemon-resident compile cache must be visible in stats and must
# have absorbed the repeats (hits, not just misses).
STATS=$("$CERB" query --socket "$SOCK" --op stats) || fail "stats op failed"
case "$STATS" in
*'"compile_cache"'*) : ;;
*) fail "stats does not expose compile_cache counters: $STATS" ;;
esac
case "$STATS" in
*'"hits": 0,'*) fail "expected compile-cache hits after batch repeats: $STATS" ;;
esac

# SIGTERM with a request in flight: the drain must finish it (zero drops).
"$CERB" query "$WORK/t3.c" --socket "$SOCK" \
  --policies concrete,defacto,strict-iso,cheri --no-cache \
  --report "$WORK/inflight.json" --quiet &
INFLIGHT_PID=$!
sleep 0.2 # let the request reach admission
kill -TERM "$SERVE_PID"

wait "$INFLIGHT_PID" || fail "in-flight query was dropped during drain"
cmp -s "$WORK/inflight.json" "$WORK/cold3.json" ||
  fail "drained in-flight response differs from the cold bytes"

wait "$SERVE_PID"
rc=$?
SERVE_PID=
[ "$rc" = 0 ] || fail "daemon exited $rc after SIGTERM (want 0)"
[ -e "$SOCK" ] && fail "socket file not removed on drain"
[ -f "$WORK/cache/index.json" ] || fail "cache index not flushed on drain"

# Post-drain queries must fail fast, not hang.
if "$CERB" query --socket "$SOCK" --op ping >/dev/null 2>&1; then
  fail "daemon still answering after drain"
fi

# ---------------------------------------------------------------------------
# Supervised pool round: the same contract at --workers 2. Cold queries,
# warm byte-identical repeats (and byte-identical to the single-process
# replies above — multi-process must be invisible in the bytes), the
# aggregated stats shape, and a SIGTERM rolling drain that removes the
# socket and exits 0.
# ---------------------------------------------------------------------------
WSOCK="$WORK/pool.sock"
"$CERB" serve --socket "$WSOCK" --cache-dir "$WORK/wcache" --jobs 1 \
  --workers 2 --quiet &
SERVE_PID=$!

up=0
for _ in $(seq 1 100); do
  if "$CERB" query --socket "$WSOCK" --op ping >/dev/null 2>&1; then
    up=1
    break
  fi
  sleep 0.1
done
[ "$up" = 1 ] || { fail "worker pool did not come up"; exit 1; }

for i in 1 2 3; do
  "$CERB" query "$WORK/t$i.c" --socket "$WSOCK" \
    --policies concrete,defacto,strict-iso,cheri \
    --report "$WORK/wcold$i.json" --quiet || fail "pool cold query $i failed"
  cmp -s "$WORK/cold$i.json" "$WORK/wcold$i.json" ||
    fail "wcold$i.json differs from the single-process reply"
done
for i in 1 2 3; do
  "$CERB" query "$WORK/t$i.c" --socket "$WSOCK" \
    --policies concrete,defacto,strict-iso,cheri \
    --report "$WORK/wwarm$i.json" --quiet || fail "pool warm query $i failed"
  cmp -s "$WORK/wcold$i.json" "$WORK/wwarm$i.json" ||
    fail "wwarm$i.json differs across workers (shared cache not byte-stable)"
done

# Aggregated stats: the supervisor section plus one row per worker slot,
# both running, with live counters spliced in.
WSTATS=$("$CERB" query --socket "$WSOCK" --op stats) ||
  fail "pool stats op failed"
case "$WSTATS" in
*'"supervisor"'*) : ;;
*) fail "pool stats lacks the supervisor section: $WSTATS" ;;
esac
case "$WSTATS" in
*'"workers": 2'*) : ;;
*) fail "pool stats does not report 2 workers: $WSTATS" ;;
esac
case "$WSTATS" in
*'"aggregated": true'*) : ;;
*) fail "pool stats not aggregated across workers: $WSTATS" ;;
esac
case "$WSTATS" in
*'"degraded": false'*) : ;;
*) fail "fresh pool reports degraded: $WSTATS" ;;
esac
running_count=$(printf '%s' "$WSTATS" | grep -o '"state": "running"' | wc -l)
[ "$running_count" = 2 ] ||
  fail "expected 2 running worker slots, saw $running_count: $WSTATS"

# Rolling drain with a request in flight: zero drops, exit 0, socket gone.
"$CERB" query "$WORK/t3.c" --socket "$WSOCK" \
  --policies concrete,defacto,strict-iso,cheri --no-cache \
  --report "$WORK/winflight.json" --quiet &
INFLIGHT_PID=$!
sleep 0.2
kill -TERM "$SERVE_PID"

wait "$INFLIGHT_PID" || fail "in-flight query dropped during rolling drain"
cmp -s "$WORK/winflight.json" "$WORK/cold3.json" ||
  fail "rolling-drain in-flight response differs from the cold bytes"

wait "$SERVE_PID"
rc=$?
SERVE_PID=
[ "$rc" = 0 ] || fail "supervisor exited $rc after SIGTERM (want 0)"
[ -e "$WSOCK" ] && fail "pool socket not removed on rolling drain"

if "$CERB" query --socket "$WSOCK" --op ping >/dev/null 2>&1; then
  fail "pool still answering after drain"
fi

if [ "$FAILED" = 0 ]; then
  echo "serve_smoke: OK"
  exit 0
fi
exit 1
