#!/bin/sh
# Full CI gate: tier-1 unit suite, the slow golden-outcome regression
# sweep (tests/test_golden_defacto.cpp), and a fixed-seed-range fuzz
# campaign smoke stage (label `fuzz`, excluded from tier-1). Use
# scripts/tier1.sh alone for the fast inner loop; this script is what a
# merge gate should run.
set -e

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

cmake -B "$BUILD" -S "$ROOT"
cmake --build "$BUILD" -j "$JOBS"
cd "$BUILD"
ctest --output-on-failure -L tier1 -j "$JOBS"
ctest --output-on-failure -L slow -j "$JOBS"
ctest --output-on-failure -L fuzz -j "$JOBS"
