#!/bin/sh
# Full CI gate: tier-1 unit suite, the slow golden-outcome regression
# sweep (tests/test_golden_defacto.cpp), a fixed-seed-range fuzz
# campaign smoke stage (label `fuzz`, excluded from tier-1), the
# batch-protocol determinism matrix (label `serve_batch`,
# tests/test_serve_batch.cpp — also part of tier-1, re-run by label so a
# registration slip cannot silently drop it), the supervised worker-pool
# matrix (label `workers`, tests/test_workers.cpp — backoff/breaker units
# plus kill -9 recovery against the real binary), the evaluation-daemon
# lifecycle smoke (label `serve_smoke`, scripts/serve_smoke.sh through
# the real CLI, including the `cerb suite --server` batch rounds and a
# `--workers 2` pool round), and
# the fault-injection chaos soak of the serve stack (label `chaos`,
# tests/test_chaos.cpp; replay a failure with
# CERB_CHAOS_SEED=<seed from the log>). Use
# scripts/tier1.sh alone for the fast inner loop; this script is what a
# merge gate should run.
#
# Environment:
#   BUILD_DIR             build tree (default: <repo>/build)
#   JOBS                  compile parallelism (default: nproc)
#   CTEST_PARALLEL_LEVEL  test parallelism (default: $JOBS)
#   CMAKE_ARGS            extra cmake configure arguments
set -eu

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"
TEST_JOBS="${CTEST_PARALLEL_LEVEL:-$JOBS}"

# shellcheck disable=SC2086  # CMAKE_ARGS is intentionally word-split
cmake -B "$BUILD" -S "$ROOT" ${CMAKE_ARGS:-}
cmake --build "$BUILD" -j "$JOBS"
cd "$BUILD"

# Runs every test carrying one ctest label. A label matching zero tests
# (renamed label, broken test registration) must fail the gate, not
# silently pass it: `ctest -L nosuch` exits 0 with "No tests were found".
run_label() {
    label="$1"
    if ctest -N -L "$label" | grep -q "Total Tests: 0"; then
        echo "ci.sh: label '$label' matches no tests" >&2
        exit 1
    fi
    ctest --output-on-failure -L "$label" -j "$TEST_JOBS"
}

run_label tier1
# Core lowering equivalence sweep (label `lowering`,
# tests/test_lowering.cpp): also part of tier-1, re-run by label so the
# lowered-vs-tree-walking contract cannot silently drop out.
run_label lowering
run_label slow
run_label fuzz
run_label serve_batch
# Supervised worker pool (label `workers`, tests/test_workers.cpp): also
# part of tier-1, re-run by label so a registration slip cannot silently
# drop the crash-recovery contract.
run_label workers
run_label serve_smoke
run_label chaos

# Docs stage: docs/cli.md must match `cerb --help` byte for byte, so the
# CLI reference cannot drift from the binary.
sh "$ROOT/scripts/check_docs.sh" "$BUILD/cerb"
